package tpch

import (
	"fmt"
	"os"
	"path/filepath"

	"ftpde/internal/engine"
)

// tableSpec describes the on-disk layout of one TPC-H table.
type tableSpec struct {
	name       string
	keyCol     int
	replicated bool
}

var tblSpecs = []tableSpec{
	{"region", -1, true},
	{"nation", -1, true},
	{"supplier", 0, false},
	{"customer", 0, false},
	{"orders", 0, false},
	{"lineitem", 0, false}, // co-partitioned with orders on the order key
	{"part", 0, false},
	{"partsupp", 0, false},
}

// DumpTBL writes every table of the catalog as <dir>/<table>.tbl in dbgen's
// format, so generated data can be inspected or exchanged with other tools.
func DumpTBL(cat *engine.Catalog, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, spec := range tblSpecs {
		t, err := cat.Table(spec.name)
		if err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, spec.name+".tbl"))
		if err != nil {
			return err
		}
		if err := engine.WriteTBL(t, f); err != nil {
			f.Close()
			return fmt.Errorf("tpch: dumping %s: %w", spec.name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadTBL builds a catalog from <dir>/<table>.tbl files (e.g. produced by
// DumpTBL or by an external dbgen with matching column subsets), restoring
// the paper's partitioning layout: NATION/REGION replicated, everything else
// hash-partitioned on its key, LINEITEM co-partitioned with ORDERS.
func LoadTBL(dir string, parts int) (*engine.Catalog, error) {
	// Schemas come from a reference generation (they are static).
	ref, err := Generate(0.001, 1, 1)
	if err != nil {
		return nil, err
	}
	cat := engine.NewCatalog(parts)
	for _, spec := range tblSpecs {
		refTable, err := ref.Table(spec.name)
		if err != nil {
			return nil, err
		}
		f, err := os.Open(filepath.Join(dir, spec.name+".tbl"))
		if err != nil {
			return nil, fmt.Errorf("tpch: loading %s: %w", spec.name, err)
		}
		t, err := engine.ReadTBL(spec.name, refTable.Schema, f, parts, spec.keyCol, spec.replicated)
		f.Close()
		if err != nil {
			return nil, err
		}
		if err := cat.Add(t); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

package tpch

import (
	"math"
	"testing"

	"ftpde/internal/core"
	"ftpde/internal/cost"
	"ftpde/internal/stats"
)

func TestExtendedQueries(t *testing.T) {
	qs, err := ExtendedQueries(Params{SF: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 8 {
		t.Fatalf("want 8 queries, got %d", len(qs))
	}
	wantFree := map[string]int{"Q6": 0, "Q10": 4, "Q12": 1}
	wantBaseline := map[string]float64{"Q6": 120, "Q10": 600, "Q12": 300}
	for _, q := range qs[5:] {
		if err := q.Plan.Validate(); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
		if got := len(q.Plan.FreeOperators()); got != wantFree[q.Name] {
			t.Errorf("%s: free = %d, want %d", q.Name, got, wantFree[q.Name])
		}
		if math.Abs(q.Baseline-wantBaseline[q.Name]) > 1e-9 {
			t.Errorf("%s: baseline = %g, want %g", q.Name, q.Baseline, wantBaseline[q.Name])
		}
		if got := stats.CriticalPath(q.Plan); math.Abs(got-q.Baseline) > 1e-6*q.Baseline {
			t.Errorf("%s: critical path %g != baseline %g", q.Name, got, q.Baseline)
		}
	}
}

func TestExtendedQueriesOptimizable(t *testing.T) {
	qs, err := ExtendedQueries(Params{SF: 100})
	if err != nil {
		t.Fatal(err)
	}
	m := cost.Model{MTBF: 3600, MTTR: 1, Percentile: 0.95, PipeConst: 1, Nodes: 10}
	for _, q := range qs {
		res, err := core.Optimize(q.Plan, core.Options{Model: m})
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if res.Runtime < q.Baseline-1e-6 {
			t.Errorf("%s: optimized estimate %g below baseline %g", q.Name, res.Runtime, q.Baseline)
		}
	}
}

func TestQ10PicksCheapCheckpointUnderFailures(t *testing.T) {
	q, err := Q10(Params{SF: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Long-running Q10 under a low MTBF: the optimizer must checkpoint
	// something.
	m := cost.Model{MTBF: 3600, MTTR: 1, Percentile: 0.95, PipeConst: 1}
	res, err := core.Optimize(q.Plan, core.Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Config.Materialized()) == 0 {
		t.Error("Q10@SF1000 under hourly failures should materialize intermediates")
	}
}

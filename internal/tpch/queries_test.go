package tpch

import (
	"math"
	"testing"

	"ftpde/internal/stats"
)

func TestAllQueriesValid(t *testing.T) {
	qs, err := Queries(Params{SF: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 5 {
		t.Fatalf("want 5 queries, got %d", len(qs))
	}
	wantNames := []string{"Q1", "Q3", "Q5", "Q1C", "Q2C"}
	for i, q := range qs {
		if q.Name != wantNames[i] {
			t.Errorf("query %d name = %s, want %s", i, q.Name, wantNames[i])
		}
		if err := q.Plan.Validate(); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
		got := stats.CriticalPath(q.Plan)
		if math.Abs(got-q.Baseline) > 1e-6*q.Baseline {
			t.Errorf("%s: critical path %g != declared baseline %g", q.Name, got, q.Baseline)
		}
	}
}

func TestFreeOperatorCounts(t *testing.T) {
	qs, err := Queries(Params{SF: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Q1 has no free operator; Q5 has exactly the five joins free
	// (Figure 9), giving 2^5 = 32 configurations.
	want := map[string]int{"Q1": 0, "Q3": 2, "Q5": 5, "Q1C": 2, "Q2C": 8}
	for _, q := range qs {
		if got := len(q.Plan.FreeOperators()); got != want[q.Name] {
			t.Errorf("%s: %d free operators, want %d", q.Name, got, want[q.Name])
		}
	}
}

func TestQ5Baseline905s(t *testing.T) {
	q, err := Q5(Params{SF: 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.Baseline-905.33) > 0.01 {
		t.Errorf("Q5@SF100 baseline = %g, want 905.33", q.Baseline)
	}
}

func TestQ5MaterializationShare(t *testing.T) {
	// Paper Section 5.3: "the total materialization costs of all operators
	// (1-5 in Figure 9) represent only 34.13% of the total runtime costs".
	q, err := Q5(Params{SF: 100})
	if err != nil {
		t.Fatal(err)
	}
	matFree := 0.0
	for _, id := range q.Plan.FreeOperators() {
		matFree += q.Plan.Op(id).MatCost
	}
	ratio := matFree / q.Plan.TotalRunCost()
	if ratio < 0.25 || ratio > 0.45 {
		t.Errorf("Q5 free-operator materialization share = %.2f%%, want ~34%%", ratio*100)
	}
}

func TestComplexQueriesHaveHighMatShare(t *testing.T) {
	// Paper Figure 8 discussion: Q1C and Q2C have materialization costs of
	// ~60-100% of the runtime costs under all-mat.
	for _, build := range []func(Params) (*Query, error){Q1C, Q2C} {
		q, err := build(Params{SF: 100})
		if err != nil {
			t.Fatal(err)
		}
		matFree := 0.0
		for _, id := range q.Plan.FreeOperators() {
			matFree += q.Plan.Op(id).MatCost
		}
		ratio := matFree / q.Plan.TotalRunCost()
		if ratio < 0.5 || ratio > 1.3 {
			t.Errorf("%s all-mat materialization share = %.2f%%, want 60-100%%", q.Name, ratio*100)
		}
	}
}

func TestQ1CHasCheapMidPlanCheckpoint(t *testing.T) {
	q, err := Q1C(Params{SF: 100})
	if err != nil {
		t.Fatal(err)
	}
	free := q.Plan.FreeOperators()
	if len(free) != 2 {
		t.Fatalf("Q1C free operators = %d, want 2", len(free))
	}
	agg := q.Plan.Op(free[0])
	join := q.Plan.Op(free[1])
	// The mid-plan aggregation must be orders of magnitude cheaper to
	// materialize than the join output.
	if agg.MatCost*1000 > join.MatCost {
		t.Errorf("agg tm=%g should be <<< join tm=%g", agg.MatCost, join.MatCost)
	}
}

func TestQ2CIsDAGWithTwoSinks(t *testing.T) {
	q, err := Q2C(Params{SF: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sinks := q.Plan.Sinks(); len(sinks) != 2 {
		t.Errorf("Q2C has %d sinks, want 2", len(sinks))
	}
	// The CTE operator must feed both outer branches.
	var cteOuts int
	for _, op := range q.Plan.Operators() {
		if op.Kind == 12 { // plan.KindCTE
			cteOuts = len(q.Plan.Outputs(op.ID))
		}
	}
	if cteOuts != 2 {
		t.Errorf("CTE feeds %d consumers, want 2", cteOuts)
	}
}

func TestBaselinesScaleLinearlyInSF(t *testing.T) {
	for _, sf := range []float64{1, 10, 1000} {
		q, err := Q5(Params{SF: sf})
		if err != nil {
			t.Fatal(err)
		}
		want := 905.33 * sf / 100
		if math.Abs(q.Baseline-want) > 1e-6*want {
			t.Errorf("Q5@SF%g baseline = %g, want %g", sf, q.Baseline, want)
		}
	}
}

func TestParamsValidation(t *testing.T) {
	if _, err := Q5(Params{SF: 0}); err == nil {
		t.Error("SF=0 accepted")
	}
	if _, err := Q5(Params{SF: -5}); err == nil {
		t.Error("negative SF accepted")
	}
	if _, err := Queries(Params{SF: -1}); err == nil {
		t.Error("Queries accepted bad params")
	}
}

func TestQ5JoinGraph1344Orders(t *testing.T) {
	g, err := Q5JoinGraph(Params{SF: 10})
	if err != nil {
		t.Fatal(err)
	}
	n, err := g.CountOrders()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1344 {
		t.Fatalf("Q5 join graph has %d orders, want 1344", n)
	}
}

func TestQ5PlanFromTreeStructure(t *testing.T) {
	prm := Params{SF: 10}
	g, err := Q5JoinGraph(prm)
	if err != nil {
		t.Fatal(err)
	}
	coster, err := Q5Coster(prm)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := g.TopK(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trees {
		p := Q5PlanFromTree(tr, g, coster)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := len(p.FreeOperators()); got != 5 {
			t.Errorf("enumerated Q5 plan has %d free operators, want 5", got)
		}
		if got := p.Len(); got != 12 {
			t.Errorf("enumerated Q5 plan has %d operators, want 12", got)
		}
	}
}

func TestQ5CosterCalibration(t *testing.T) {
	prm := Params{SF: 10}
	g, err := Q5JoinGraph(prm)
	if err != nil {
		t.Fatal(err)
	}
	coster, err := Q5Coster(prm)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := g.TopK(1)
	if err != nil {
		t.Fatal(err)
	}
	p := Q5PlanFromTree(trees[0], g, coster)
	// The cheapest join order's baseline should be within a factor ~2 of the
	// hand-built Q5 plan's baseline at the same SF (same cost constants).
	got := stats.CriticalPath(p)
	want := 905.33 * prm.SF / 100
	if got < want/3 || got > want*3 {
		t.Errorf("calibrated best-order baseline %g too far from %g", got, want)
	}
}

// Package tpch provides the TPC-H workload substrate of the paper's
// evaluation: SF-parameterized execution plans (with calibrated cost
// estimates) for the five evaluated queries Q1, Q3, Q5, Q1C and Q2C, the Q5
// join graph used for join-order enumeration, and a deterministic data
// generator plus executable query trees for the real execution engine.
//
// The paper measured tr(o)/tm(o) on a 10-node MySQL/XDB cluster writing
// intermediates to shared iSCSI storage. Here the per-operator cost shares
// are specified directly (relative units, uniformly rescaled to the paper's
// baseline runtimes) and calibrated to the quantities the paper states:
//   - Q5@SF100 baseline = 905.33 s,
//   - Q5 join materialization costs = ~34% of the total runtime costs,
//   - Q1C/Q2C materialization costs = 60-100% of the runtime costs, with a
//     cheap aggregation checkpoint in the middle of the plan,
//   - Q1 has no free operator.
package tpch

import (
	"fmt"

	"ftpde/internal/plan"
	"ftpde/internal/stats"
)

// Params parameterizes plan generation.
type Params struct {
	// SF is the TPC-H scale factor (1 unit = ~1 GB of raw data).
	SF float64
	// Nodes is the cluster size used for partition-parallel cost estimates.
	// Defaults to the paper's 10.
	Nodes int
}

func (p Params) withDefaults() Params {
	if p.Nodes == 0 {
		p.Nodes = 10
	}
	return p
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.SF <= 0 {
		return fmt.Errorf("tpch: scale factor must be positive, got %g", p.SF)
	}
	if p.Nodes < 0 {
		return fmt.Errorf("tpch: nodes must be non-negative, got %d", p.Nodes)
	}
	return nil
}

// Table cardinalities per scale factor (TPC-H specification).
const (
	rowsLineitemPerSF = 6_000_000
	rowsOrdersPerSF   = 1_500_000
	rowsCustomerPerSF = 150_000
	rowsSupplierPerSF = 10_000
	rowsPartPerSF     = 200_000
	rowsPartsuppPerSF = 800_000
	rowsNation        = 25
	rowsRegion        = 5
)

// relativeWriteCost is WritePerRow/CPUPerRow used by the join-order coster:
// how much more expensive writing one row to the shared fault-tolerant
// storage medium is than processing it.
const relativeWriteCost = 17.0

// Baseline runtimes in seconds at SF = 100 (scaled linearly in SF). The Q5
// value is stated in the paper; the others are chosen to sit in the "seconds
// to multiple hours" mixed-workload band the paper targets.
const (
	baselineQ1AtSF100  = 180.0
	baselineQ3AtSF100  = 450.0
	baselineQ5AtSF100  = 905.33
	baselineQ1CAtSF100 = 1500.0
	baselineQ2CAtSF100 = 2000.0
)

// Query couples a plan with its workload metadata.
type Query struct {
	// Name is the TPC-H query identifier (Q1, Q3, Q5, Q1C, Q2C).
	Name string
	// Plan is the DAG-structured execution plan with calibrated costs. All
	// operators start non-materialized; scans and sinks are bound.
	Plan *plan.Plan
	// Baseline is the failure-free critical-path runtime in seconds — the
	// denominator of the paper's overhead metric.
	Baseline float64
}

// queryBuilder accumulates operators with relative costs, then rescales them
// uniformly so the plan's critical path matches the query's calibrated
// baseline.
type queryBuilder struct {
	p *plan.Plan
}

func newBuilder() *queryBuilder { return &queryBuilder{p: plan.New()} }

func (b *queryBuilder) add(name string, kind plan.Kind, tr, tm float64, rows float64, bound bool, inputs ...plan.OpID) plan.OpID {
	id := b.p.Add(plan.Operator{
		Name: name, Kind: kind,
		RunCost: tr, MatCost: tm,
		Bound: bound, Rows: rows,
	})
	for _, in := range inputs {
		b.p.MustConnect(in, id)
	}
	return id
}

func (b *queryBuilder) finish(name string, baseline float64) (*Query, error) {
	if err := b.p.Validate(); err != nil {
		return nil, fmt.Errorf("tpch: %s: %w", name, err)
	}
	if err := stats.NormalizeBaseline(b.p, baseline); err != nil {
		return nil, fmt.Errorf("tpch: %s: %w", name, err)
	}
	return &Query{Name: name, Plan: b.p, Baseline: baseline}, nil
}

// Q1 builds TPC-H query 1: a single scan of LINEITEM with an aggregation on
// top — no joins and, as the paper notes, no free operator at all ("Q1 has
// no free operator that can be selected for materialization").
func Q1(prm Params) (*Query, error) {
	prm = prm.withDefaults()
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	L := rowsLineitemPerSF * prm.SF
	b := newBuilder()
	scan := b.add("Scan σ(LINEITEM)", plan.KindScan, 130, 200, L, true)
	b.add("Γ sum/avg group by returnflag,linestatus", plan.KindAggregate, 50, 0.01, 4, true, scan)
	return b.finish("Q1", baselineQ1AtSF100*prm.SF/100)
}

// Q3 builds TPC-H query 3: the 3-way join CUSTOMER x ORDERS x LINEITEM with
// local predicates, a revenue aggregation on top. The two join outputs are
// free; their combined materialization cost is ~20% of the runtime costs
// (paper: Q3/Q5 have "moderate total materialization costs, approx. 20-30%
// of the runtime costs").
func Q3(prm Params) (*Query, error) {
	prm = prm.withDefaults()
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	C := rowsCustomerPerSF * prm.SF
	O := rowsOrdersPerSF * prm.SF
	L := rowsLineitemPerSF * prm.SF
	b := newBuilder()
	sc := b.add("Scan σ(CUSTOMER) mktsegment", plan.KindScan, 5, 30, 0.2*C, true)
	so := b.add("Scan σ(ORDERS) orderdate", plan.KindScan, 25, 100, 0.48*O, true)
	sl := b.add("Scan σ(LINEITEM) shipdate", plan.KindScan, 60, 400, 0.54*L, true)
	j1 := b.add("⨝ customer-orders", plan.KindHashJoin, 120, 30, 0.04*O, false, sc, so)
	j2 := b.add("⨝ orders-lineitem", plan.KindHashJoin, 210, 65, 0.02*L, false, j1, sl)
	b.add("Γ revenue group by orderkey", plan.KindAggregate, 50, 0.1, 10, true, j2)
	return b.finish("Q3", baselineQ3AtSF100*prm.SF/100)
}

// Q5 builds TPC-H query 5 exactly as drawn in the paper's Figure 9: the
// left-deep chain σ(R) ⨝ N ⨝ C ⨝ σ(O) ⨝ L ⨝ S with an aggregation on top.
// The five join outputs (numbered 1-5 in the figure) are the free operators,
// so the optimizer enumerates 2^5 = 32 materialization configurations.
// Materializing all five joins costs 34% of the total runtime costs (the
// paper measures 34.13%); joins 2 and 3 have cheap outputs (the checkpoints
// the cost-based scheme picks for long-running instances), join 4's output
// (orders x lineitem) is the most expensive one.
func Q5(prm Params) (*Query, error) {
	prm = prm.withDefaults()
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	C := rowsCustomerPerSF * prm.SF
	O := rowsOrdersPerSF * prm.SF
	L := rowsLineitemPerSF * prm.SF
	S := rowsSupplierPerSF * prm.SF
	b := newBuilder()
	sr := b.add("Scan σ(REGION)", plan.KindScan, 0.5, 0.01, 1, true)
	sn := b.add("Scan NATION", plan.KindScan, 0.5, 0.01, rowsNation, true)
	sc := b.add("Scan CUSTOMER", plan.KindScan, 10, 25, C, true)
	so := b.add("Scan σ(ORDERS) orderdate", plan.KindScan, 30, 80, 0.15*O, true)
	sl := b.add("Scan LINEITEM", plan.KindScan, 40, 500, L, true)
	ss := b.add("Scan SUPPLIER", plan.KindScan, 5, 10, S, true)

	j1 := b.add("⨝1 region-nation", plan.KindHashJoin, 10, 0.1, 5, false, sr, sn)
	j2 := b.add("⨝2 nation-customer", plan.KindHashJoin, 170, 35, 0.2*C, false, j1, sc)
	j3 := b.add("⨝3 customer-orders", plan.KindHashJoin, 190, 52, 0.03*O, false, j2, so)
	j4 := b.add("⨝4 orders-lineitem", plan.KindHashJoin, 310, 209, 0.12*O, false, j3, sl)
	j5 := b.add("⨝5 lineitem-supplier", plan.KindHashJoin, 155, 42, 0.024*O, false, j4, ss)
	b.add("Γ revenue group by nation", plan.KindAggregate, 75, 0.1, 5, true, j5)
	return b.finish("Q5", baselineQ5AtSF100*prm.SF/100)
}

// Q1C builds the paper's nested Q1 variant: Q1 as the inner query, its tiny
// aggregate joined back against LINEITEM to count items priced above the
// average. The mid-plan aggregation has near-zero materialization cost — the
// checkpoint the cost-based scheme exploits — while the join's output is
// huge (materialization costs 60-100% of the runtime costs under all-mat).
func Q1C(prm Params) (*Query, error) {
	prm = prm.withDefaults()
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	L := rowsLineitemPerSF * prm.SF
	b := newBuilder()
	s1 := b.add("Scan σ(LINEITEM) inner", plan.KindScan, 100, 350, 0.95*L, true)
	agg1 := b.add("Γ avg(price) by status", plan.KindAggregate, 220, 0.01, 4, false, s1)
	s2 := b.add("Scan LINEITEM outer", plan.KindScan, 100, 400, L, true)
	j := b.add("⨝ price > avg", plan.KindHashJoin, 700, 780, 0.25*L, false, agg1, s2)
	b.add("Γ count by status", plan.KindAggregate, 80, 0.01, 4, true, j)
	return b.finish("Q1C", baselineQ1CAtSF100*prm.SF/100)
}

// Q2C builds the paper's DAG-structured Q2 variant: the inner aggregation
// query (a 4-way join over PARTSUPP, SUPPLIER, NATION, REGION) is used as a
// common table expression consumed by two outer queries with different
// filter predicates on PART — a plan with two sinks sharing the CTE. The CTE
// aggregation is the cheap mid-plan checkpoint.
func Q2C(prm Params) (*Query, error) {
	prm = prm.withDefaults()
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	PS := rowsPartsuppPerSF * prm.SF
	S := rowsSupplierPerSF * prm.SF
	P := rowsPartPerSF * prm.SF
	b := newBuilder()

	// Inner CTE: 4-way join + aggregation.
	sps := b.add("Scan PARTSUPP", plan.KindScan, 80, 450, PS, true)
	ss := b.add("Scan SUPPLIER", plan.KindScan, 10, 20, S, true)
	sn := b.add("Scan NATION", plan.KindScan, 0.5, 0.01, rowsNation, true)
	sr := b.add("Scan σ(REGION)", plan.KindScan, 0.5, 0.01, 1, true)
	j1 := b.add("⨝ nation-region", plan.KindHashJoin, 8, 0.1, 5, false, sn, sr)
	j2 := b.add("⨝ supplier-nation", plan.KindHashJoin, 60, 10, 0.2*S, false, j1, ss)
	j3 := b.add("⨝ partsupp-supplier", plan.KindHashJoin, 380, 450, 0.1*PS, false, j2, sps)
	cte := b.add("Γ min(supplycost) by part [CTE]", plan.KindCTE, 120, 14, 0.1*P, false, j3)

	// Two outer queries with different PART predicates.
	for i, sel := range []float64{0.01, 0.02} {
		sp := b.add(fmt.Sprintf("Scan σ%d(PART)", i+1), plan.KindScan, 10, 15, sel*P, true)
		j4 := b.add(fmt.Sprintf("⨝ part-cte (outer %d)", i+1), plan.KindHashJoin, 160, 150, sel*P, false, cte, sp)
		j5 := b.add(fmt.Sprintf("⨝ supplier (outer %d)", i+1), plan.KindHashJoin, 120, 100, sel*P, false, j4, ss)
		b.add(fmt.Sprintf("Γ/sort result %d", i+1), plan.KindSort, 40, 0.1, 100, true, j5)
	}
	return b.finish("Q2C", baselineQ2CAtSF100*prm.SF/100)
}

// Queries builds all five evaluated queries.
func Queries(prm Params) ([]*Query, error) {
	var out []*Query
	for _, f := range []func(Params) (*Query, error){Q1, Q3, Q5, Q1C, Q2C} {
		q, err := f(prm)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

package tpch

import (
	"math"
	"strings"
	"testing"

	"ftpde/internal/engine"
)

func TestTBLRoundTrip(t *testing.T) {
	dir := t.TempDir()
	orig, err := Generate(0.002, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := DumpTBL(orig, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTBL(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"region", "nation", "supplier", "customer", "orders", "lineitem", "part", "partsupp"} {
		a, err := orig.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Replicated != b.Replicated {
			t.Errorf("%s: replication flag lost", name)
		}
		if a.Rows() != b.Rows() {
			t.Errorf("%s: %d rows loaded, want %d", name, b.Rows(), a.Rows())
		}
	}

	// Query equivalence: Q1 over original vs loaded data.
	q1a, err := EngineQ1(orig, 1200)
	if err != nil {
		t.Fatal(err)
	}
	q1b, err := EngineQ1(loaded, 1200)
	if err != nil {
		t.Fatal(err)
	}
	co := &engine.Coordinator{Nodes: 4}
	ra, _, err := co.Execute(q1a)
	if err != nil {
		t.Fatal(err)
	}
	co2 := &engine.Coordinator{Nodes: 4}
	rb, _, err := co2.Execute(q1b)
	if err != nil {
		t.Fatal(err)
	}
	rowsA, rowsB := ra.AllRows(), rb.AllRows()
	if len(rowsA) != len(rowsB) {
		t.Fatalf("group counts differ: %d vs %d", len(rowsA), len(rowsB))
	}
	byKey := map[string]engine.Row{}
	for _, r := range rowsA {
		byKey[r[0].(string)+"|"+r[1].(string)] = r
	}
	for _, r := range rowsB {
		ref := byKey[r[0].(string)+"|"+r[1].(string)]
		if ref == nil || math.Abs(r[2].(float64)-ref[2].(float64)) > 1e-6 {
			t.Errorf("Q1 differs on loaded data for group %v", r[0])
		}
	}
}

func TestReadTBLErrors(t *testing.T) {
	schema := engine.Schema{{Name: "a", Type: engine.TypeInt}, {Name: "b", Type: engine.TypeFloat}}
	if _, err := engine.ReadTBL("t", schema, strings.NewReader("1|\n"), 2, 0, false); err == nil {
		t.Error("short row accepted")
	}
	if _, err := engine.ReadTBL("t", schema, strings.NewReader("x|1.5|\n"), 2, 0, false); err == nil {
		t.Error("non-integer accepted")
	}
	if _, err := engine.ReadTBL("t", schema, strings.NewReader("1|zz|\n"), 2, 0, false); err == nil {
		t.Error("non-float accepted")
	}
	tb, err := engine.ReadTBL("t", schema, strings.NewReader("1|1.5|\n\n2|2.5|\n"), 2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 {
		t.Errorf("rows = %d, want 2 (blank lines skipped)", tb.Rows())
	}
}

func TestWriteTBLRejectsDelimiterInString(t *testing.T) {
	schema := engine.Schema{{Name: "s", Type: engine.TypeString}}
	tb, err := engine.NewTable("t", schema, []engine.Row{{"bad|value"}}, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := engine.WriteTBL(tb, &sb); err == nil {
		t.Error("embedded delimiter accepted")
	}
}

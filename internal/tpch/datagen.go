package tpch

import (
	"fmt"
	"math/rand"

	"ftpde/internal/engine"
)

// Date constants: o_orderdate/l_shipdate are day numbers in [0, dateRange).
const dateRange = 2406 // ~1992-01-01 .. 1998-08-02 in days, like TPC-H

// Generate deterministically produces a partitioned TPC-H database at the
// given scale factor for the execution engine. Layout follows the paper's
// setup: NATION and REGION replicated to all nodes, LINEITEM and ORDERS
// co-partitioned on the order key, the remaining tables partitioned on their
// primary keys. Tables are built as typed column vectors, so scans execute
// columnar from the start; the row-oriented Parts view is derived. Intended
// for small scale factors (tests/examples); the cost-level experiments never
// materialize rows.
func Generate(sf float64, parts int, seed int64) (*engine.Catalog, error) {
	if sf <= 0 {
		return nil, fmt.Errorf("tpch: scale factor must be positive, got %g", sf)
	}
	if parts <= 0 {
		return nil, fmt.Errorf("tpch: need at least one partition, got %d", parts)
	}
	rng := rand.New(rand.NewSource(seed))
	cat := engine.NewCatalog(parts)

	scaled := func(base int) int {
		n := int(float64(base) * sf)
		if n < 1 {
			n = 1
		}
		return n
	}
	nSupplier := scaled(rowsSupplierPerSF)
	nCustomer := scaled(rowsCustomerPerSF)
	nOrders := scaled(rowsOrdersPerSF)
	nPart := scaled(rowsPartPerSF)

	ints := func(n int) engine.Vector { return engine.Vector{Type: engine.TypeInt, Ints: make([]int64, n)} }
	floats := func(n int) engine.Vector { return engine.Vector{Type: engine.TypeFloat, Floats: make([]float64, n)} }
	strs := func(n int) engine.Vector { return engine.Vector{Type: engine.TypeString, Strings: make([]string, n)} }

	// REGION (replicated).
	regionSchema := engine.Schema{
		{Name: "r_regionkey", Type: engine.TypeInt},
		{Name: "r_name", Type: engine.TypeString},
	}
	regionCols := []engine.Vector{ints(rowsRegion), strs(rowsRegion)}
	for i := 0; i < rowsRegion; i++ {
		regionCols[0].Ints[i] = int64(i)
		regionCols[1].Strings[i] = fmt.Sprintf("REGION#%d", i)
	}
	region, err := engine.NewReplicatedTableFromColumns("region", regionSchema, regionCols, parts)
	if err != nil {
		return nil, err
	}

	// NATION (replicated).
	nationSchema := engine.Schema{
		{Name: "n_nationkey", Type: engine.TypeInt},
		{Name: "n_regionkey", Type: engine.TypeInt},
		{Name: "n_name", Type: engine.TypeString},
	}
	nationCols := []engine.Vector{ints(rowsNation), ints(rowsNation), strs(rowsNation)}
	for i := 0; i < rowsNation; i++ {
		nationCols[0].Ints[i] = int64(i)
		nationCols[1].Ints[i] = int64(i % rowsRegion)
		nationCols[2].Strings[i] = fmt.Sprintf("NATION#%d", i)
	}
	nation, err := engine.NewReplicatedTableFromColumns("nation", nationSchema, nationCols, parts)
	if err != nil {
		return nil, err
	}

	// SUPPLIER partitioned on s_suppkey.
	supplierSchema := engine.Schema{
		{Name: "s_suppkey", Type: engine.TypeInt},
		{Name: "s_nationkey", Type: engine.TypeInt},
	}
	supplierCols := []engine.Vector{ints(nSupplier), ints(nSupplier)}
	for i := 0; i < nSupplier; i++ {
		supplierCols[0].Ints[i] = int64(i)
		supplierCols[1].Ints[i] = int64(rng.Intn(rowsNation))
	}
	supplier, err := engine.NewTableFromColumns("supplier", supplierSchema, supplierCols, parts, 0)
	if err != nil {
		return nil, err
	}

	// CUSTOMER partitioned on c_custkey.
	customerSchema := engine.Schema{
		{Name: "c_custkey", Type: engine.TypeInt},
		{Name: "c_nationkey", Type: engine.TypeInt},
		{Name: "c_mktsegment", Type: engine.TypeString},
	}
	segments := []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	customerCols := []engine.Vector{ints(nCustomer), ints(nCustomer), strs(nCustomer)}
	for i := 0; i < nCustomer; i++ {
		customerCols[0].Ints[i] = int64(i)
		customerCols[1].Ints[i] = int64(rng.Intn(rowsNation))
		customerCols[2].Strings[i] = segments[rng.Intn(len(segments))]
	}
	customer, err := engine.NewTableFromColumns("customer", customerSchema, customerCols, parts, 0)
	if err != nil {
		return nil, err
	}

	// ORDERS and LINEITEM co-partitioned on the order key.
	ordersSchema := engine.Schema{
		{Name: "o_orderkey", Type: engine.TypeInt},
		{Name: "o_custkey", Type: engine.TypeInt},
		{Name: "o_orderdate", Type: engine.TypeInt},
	}
	lineitemSchema := engine.Schema{
		{Name: "l_orderkey", Type: engine.TypeInt},
		{Name: "l_suppkey", Type: engine.TypeInt},
		{Name: "l_quantity", Type: engine.TypeFloat},
		{Name: "l_extendedprice", Type: engine.TypeFloat},
		{Name: "l_discount", Type: engine.TypeFloat},
		{Name: "l_returnflag", Type: engine.TypeString},
		{Name: "l_linestatus", Type: engine.TypeString},
		{Name: "l_shipdate", Type: engine.TypeInt},
	}
	ordersCols := []engine.Vector{ints(nOrders), ints(nOrders), ints(nOrders)}
	lineitemCols := []engine.Vector{ints(0), ints(0), floats(0), floats(0), floats(0), strs(0), strs(0), ints(0)}
	flags := []string{"A", "N", "R"}
	statuses := []string{"F", "O"}
	for i := 0; i < nOrders; i++ {
		orderDate := int64(rng.Intn(dateRange))
		ordersCols[0].Ints[i] = int64(i)
		ordersCols[1].Ints[i] = int64(rng.Intn(nCustomer))
		ordersCols[2].Ints[i] = orderDate
		lines := 1 + rng.Intn(7)
		for l := 0; l < lines; l++ {
			price := 900.0 + rng.Float64()*104000.0
			lineitemCols[0].Ints = append(lineitemCols[0].Ints, int64(i))
			lineitemCols[1].Ints = append(lineitemCols[1].Ints, int64(rng.Intn(nSupplier)))
			lineitemCols[2].Floats = append(lineitemCols[2].Floats, 1+float64(rng.Intn(50)))
			lineitemCols[3].Floats = append(lineitemCols[3].Floats, price)
			lineitemCols[4].Floats = append(lineitemCols[4].Floats, float64(rng.Intn(11))/100.0)
			lineitemCols[5].Strings = append(lineitemCols[5].Strings, flags[rng.Intn(len(flags))])
			lineitemCols[6].Strings = append(lineitemCols[6].Strings, statuses[rng.Intn(len(statuses))])
			lineitemCols[7].Ints = append(lineitemCols[7].Ints, orderDate+int64(rng.Intn(120)))
		}
	}
	orders, err := engine.NewTableFromColumns("orders", ordersSchema, ordersCols, parts, 0)
	if err != nil {
		return nil, err
	}
	lineitem, err := engine.NewTableFromColumns("lineitem", lineitemSchema, lineitemCols, parts, 0)
	if err != nil {
		return nil, err
	}

	// PART partitioned on p_partkey; PARTSUPP on ps_partkey (RREF-style
	// co-location with PART).
	partSchema := engine.Schema{
		{Name: "p_partkey", Type: engine.TypeInt},
		{Name: "p_size", Type: engine.TypeInt},
	}
	partCols := []engine.Vector{ints(nPart), ints(nPart)}
	for i := 0; i < nPart; i++ {
		partCols[0].Ints[i] = int64(i)
		partCols[1].Ints[i] = int64(1 + rng.Intn(50))
	}
	part, err := engine.NewTableFromColumns("part", partSchema, partCols, parts, 0)
	if err != nil {
		return nil, err
	}

	partsuppSchema := engine.Schema{
		{Name: "ps_partkey", Type: engine.TypeInt},
		{Name: "ps_suppkey", Type: engine.TypeInt},
		{Name: "ps_supplycost", Type: engine.TypeFloat},
	}
	partsuppCols := []engine.Vector{ints(0), ints(0), floats(0)}
	for i := 0; i < nPart; i++ {
		for j := 0; j < 4; j++ {
			partsuppCols[0].Ints = append(partsuppCols[0].Ints, int64(i))
			partsuppCols[1].Ints = append(partsuppCols[1].Ints, int64(rng.Intn(nSupplier)))
			partsuppCols[2].Floats = append(partsuppCols[2].Floats, 1+rng.Float64()*1000)
		}
	}
	partsupp, err := engine.NewTableFromColumns("partsupp", partsuppSchema, partsuppCols, parts, 0)
	if err != nil {
		return nil, err
	}

	for _, t := range []*engine.Table{region, nation, supplier, customer, orders, lineitem, part, partsupp} {
		if err := cat.Add(t); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

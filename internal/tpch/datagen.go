package tpch

import (
	"fmt"
	"math/rand"

	"ftpde/internal/engine"
)

// Date constants: o_orderdate/l_shipdate are day numbers in [0, dateRange).
const dateRange = 2406 // ~1992-01-01 .. 1998-08-02 in days, like TPC-H

// Generate deterministically produces a partitioned TPC-H database at the
// given scale factor for the execution engine. Layout follows the paper's
// setup: NATION and REGION replicated to all nodes, LINEITEM and ORDERS
// co-partitioned on the order key, the remaining tables partitioned on their
// primary keys. Intended for small scale factors (tests/examples); the
// cost-level experiments never materialize rows.
func Generate(sf float64, parts int, seed int64) (*engine.Catalog, error) {
	if sf <= 0 {
		return nil, fmt.Errorf("tpch: scale factor must be positive, got %g", sf)
	}
	if parts <= 0 {
		return nil, fmt.Errorf("tpch: need at least one partition, got %d", parts)
	}
	rng := rand.New(rand.NewSource(seed))
	cat := engine.NewCatalog(parts)

	scaled := func(base int) int {
		n := int(float64(base) * sf)
		if n < 1 {
			n = 1
		}
		return n
	}
	nSupplier := scaled(rowsSupplierPerSF)
	nCustomer := scaled(rowsCustomerPerSF)
	nOrders := scaled(rowsOrdersPerSF)
	nPart := scaled(rowsPartPerSF)

	// REGION (replicated).
	regionSchema := engine.Schema{
		{Name: "r_regionkey", Type: engine.TypeInt},
		{Name: "r_name", Type: engine.TypeString},
	}
	regionRows := make([]engine.Row, rowsRegion)
	for i := range regionRows {
		regionRows[i] = engine.Row{int64(i), fmt.Sprintf("REGION#%d", i)}
	}
	region, err := engine.NewReplicatedTable("region", regionSchema, regionRows, parts)
	if err != nil {
		return nil, err
	}

	// NATION (replicated).
	nationSchema := engine.Schema{
		{Name: "n_nationkey", Type: engine.TypeInt},
		{Name: "n_regionkey", Type: engine.TypeInt},
		{Name: "n_name", Type: engine.TypeString},
	}
	nationRows := make([]engine.Row, rowsNation)
	for i := range nationRows {
		nationRows[i] = engine.Row{int64(i), int64(i % rowsRegion), fmt.Sprintf("NATION#%d", i)}
	}
	nation, err := engine.NewReplicatedTable("nation", nationSchema, nationRows, parts)
	if err != nil {
		return nil, err
	}

	// SUPPLIER partitioned on s_suppkey.
	supplierSchema := engine.Schema{
		{Name: "s_suppkey", Type: engine.TypeInt},
		{Name: "s_nationkey", Type: engine.TypeInt},
	}
	supplierRows := make([]engine.Row, nSupplier)
	for i := range supplierRows {
		supplierRows[i] = engine.Row{int64(i), int64(rng.Intn(rowsNation))}
	}
	supplier, err := engine.NewTable("supplier", supplierSchema, supplierRows, parts, 0)
	if err != nil {
		return nil, err
	}

	// CUSTOMER partitioned on c_custkey.
	customerSchema := engine.Schema{
		{Name: "c_custkey", Type: engine.TypeInt},
		{Name: "c_nationkey", Type: engine.TypeInt},
		{Name: "c_mktsegment", Type: engine.TypeString},
	}
	segments := []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	customerRows := make([]engine.Row, nCustomer)
	for i := range customerRows {
		customerRows[i] = engine.Row{
			int64(i), int64(rng.Intn(rowsNation)), segments[rng.Intn(len(segments))],
		}
	}
	customer, err := engine.NewTable("customer", customerSchema, customerRows, parts, 0)
	if err != nil {
		return nil, err
	}

	// ORDERS and LINEITEM co-partitioned on the order key.
	ordersSchema := engine.Schema{
		{Name: "o_orderkey", Type: engine.TypeInt},
		{Name: "o_custkey", Type: engine.TypeInt},
		{Name: "o_orderdate", Type: engine.TypeInt},
	}
	lineitemSchema := engine.Schema{
		{Name: "l_orderkey", Type: engine.TypeInt},
		{Name: "l_suppkey", Type: engine.TypeInt},
		{Name: "l_quantity", Type: engine.TypeFloat},
		{Name: "l_extendedprice", Type: engine.TypeFloat},
		{Name: "l_discount", Type: engine.TypeFloat},
		{Name: "l_returnflag", Type: engine.TypeString},
		{Name: "l_linestatus", Type: engine.TypeString},
		{Name: "l_shipdate", Type: engine.TypeInt},
	}
	ordersRows := make([]engine.Row, nOrders)
	var lineitemRows []engine.Row
	flags := []string{"A", "N", "R"}
	statuses := []string{"F", "O"}
	for i := range ordersRows {
		orderDate := int64(rng.Intn(dateRange))
		ordersRows[i] = engine.Row{int64(i), int64(rng.Intn(nCustomer)), orderDate}
		lines := 1 + rng.Intn(7)
		for l := 0; l < lines; l++ {
			price := 900.0 + rng.Float64()*104000.0
			lineitemRows = append(lineitemRows, engine.Row{
				int64(i),
				int64(rng.Intn(nSupplier)),
				1 + float64(rng.Intn(50)),
				price,
				float64(rng.Intn(11)) / 100.0,
				flags[rng.Intn(len(flags))],
				statuses[rng.Intn(len(statuses))],
				orderDate + int64(rng.Intn(120)),
			})
		}
	}
	orders, err := engine.NewTable("orders", ordersSchema, ordersRows, parts, 0)
	if err != nil {
		return nil, err
	}
	lineitem, err := engine.NewTable("lineitem", lineitemSchema, lineitemRows, parts, 0)
	if err != nil {
		return nil, err
	}

	// PART partitioned on p_partkey; PARTSUPP on ps_partkey (RREF-style
	// co-location with PART).
	partSchema := engine.Schema{
		{Name: "p_partkey", Type: engine.TypeInt},
		{Name: "p_size", Type: engine.TypeInt},
	}
	partRows := make([]engine.Row, nPart)
	for i := range partRows {
		partRows[i] = engine.Row{int64(i), int64(1 + rng.Intn(50))}
	}
	part, err := engine.NewTable("part", partSchema, partRows, parts, 0)
	if err != nil {
		return nil, err
	}

	partsuppSchema := engine.Schema{
		{Name: "ps_partkey", Type: engine.TypeInt},
		{Name: "ps_suppkey", Type: engine.TypeInt},
		{Name: "ps_supplycost", Type: engine.TypeFloat},
	}
	partsuppRows := make([]engine.Row, 0, nPart*4)
	for i := 0; i < nPart; i++ {
		for j := 0; j < 4; j++ {
			partsuppRows = append(partsuppRows, engine.Row{
				int64(i), int64(rng.Intn(nSupplier)), 1 + rng.Float64()*1000,
			})
		}
	}
	partsupp, err := engine.NewTable("partsupp", partsuppSchema, partsuppRows, parts, 0)
	if err != nil {
		return nil, err
	}

	for _, t := range []*engine.Table{region, nation, supplier, customer, orders, lineitem, part, partsupp} {
		if err := cat.Add(t); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

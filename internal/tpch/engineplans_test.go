package tpch

import (
	"math"
	"sort"
	"testing"

	"ftpde/internal/engine"
)

func genCatalog(t *testing.T) *engine.Catalog {
	t.Helper()
	cat, err := Generate(0.002, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func allRowsOf(t *testing.T, cat *engine.Catalog, table string) []engine.Row {
	t.Helper()
	tb, err := cat.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	var rows []engine.Row
	for _, p := range tb.Parts {
		rows = append(rows, p...)
	}
	return rows
}

func TestGenerateCardinalities(t *testing.T) {
	cat := genCatalog(t)
	tb, _ := cat.Table("lineitem")
	// ~0.002 * 1.5M orders = 3000 orders, 1-7 lines each.
	ord, _ := cat.Table("orders")
	if ord.Rows() != 3000 {
		t.Errorf("orders = %d, want 3000", ord.Rows())
	}
	if tb.Rows() < 3000 || tb.Rows() > 21000 {
		t.Errorf("lineitem = %d, out of expected band", tb.Rows())
	}
	nat, _ := cat.Table("nation")
	if len(nat.Parts[0]) != 25 || len(nat.Parts[3]) != 25 {
		t.Error("nation not replicated to all partitions")
	}
	ps, _ := cat.Table("partsupp")
	pt, _ := cat.Table("part")
	if ps.Rows() != pt.Rows()*4 {
		t.Errorf("partsupp = %d, want 4x part = %d", ps.Rows(), pt.Rows()*4)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(0.001, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(0.001, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := a.Table("lineitem")
	tb, _ := b.Table("lineitem")
	if ta.Rows() != tb.Rows() {
		t.Fatal("same seed, different data")
	}
	c, err := Generate(0.001, 2, 43)
	if err != nil {
		t.Fatal(err)
	}
	tc, _ := c.Table("lineitem")
	if ta.Rows() == tc.Rows() {
		// Row counts can coincide; compare first rows too.
		if len(ta.Parts[0]) > 0 && len(tc.Parts[0]) > 0 {
			ra, rc := ta.Parts[0][0], tc.Parts[0][0]
			same := true
			for i := range ra {
				if ra[i] != rc[i] {
					same = false
				}
			}
			if same {
				t.Error("different seeds produced identical data")
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(0, 2, 1); err == nil {
		t.Error("sf=0 accepted")
	}
	if _, err := Generate(0.001, 0, 1); err == nil {
		t.Error("parts=0 accepted")
	}
}

func TestEngineQ1MatchesReference(t *testing.T) {
	cat := genCatalog(t)
	const shipMax = int64(1200)
	q, err := EngineQ1(cat, shipMax)
	if err != nil {
		t.Fatal(err)
	}
	co := &engine.Coordinator{Nodes: 4}
	res, _, err := co.Execute(q)
	if err != nil {
		t.Fatal(err)
	}

	// Naive reference.
	type key struct{ f, s string }
	type agg struct {
		qty, price float64
		count      int64
	}
	want := map[key]*agg{}
	li, _ := cat.Table("lineitem")
	s := li.Schema
	for _, r := range allRowsOf(t, cat, "lineitem") {
		if r[s.MustCol("l_shipdate")].(int64) > shipMax {
			continue
		}
		k := key{r[s.MustCol("l_returnflag")].(string), r[s.MustCol("l_linestatus")].(string)}
		a := want[k]
		if a == nil {
			a = &agg{}
			want[k] = a
		}
		a.qty += r[s.MustCol("l_quantity")].(float64)
		a.price += r[s.MustCol("l_extendedprice")].(float64)
		a.count++
	}

	rows := res.AllRows()
	if len(rows) != len(want) {
		t.Fatalf("got %d groups, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		k := key{r[0].(string), r[1].(string)}
		w := want[k]
		if w == nil {
			t.Fatalf("unexpected group %v", k)
		}
		if math.Abs(r[2].(float64)-w.qty) > 1e-6 {
			t.Errorf("group %v sum_qty = %g, want %g", k, r[2], w.qty)
		}
		if math.Abs(r[3].(float64)-w.price) > 1e-4 {
			t.Errorf("group %v sum_price mismatch", k)
		}
		if math.Abs(r[4].(float64)-w.price/float64(w.count)) > 1e-6 {
			t.Errorf("group %v avg mismatch", k)
		}
		if r[5].(int64) != w.count {
			t.Errorf("group %v count = %d, want %d", k, r[5], w.count)
		}
	}
}

func q3Reference(t *testing.T, cat *engine.Catalog, segment string, dateMax int64) map[int64]float64 {
	t.Helper()
	custs := map[int64]bool{}
	for _, r := range allRowsOf(t, cat, "customer") {
		if r[2].(string) == segment {
			custs[r[0].(int64)] = true
		}
	}
	orders := map[int64]bool{}
	for _, r := range allRowsOf(t, cat, "orders") {
		if r[2].(int64) < dateMax && custs[r[1].(int64)] {
			orders[r[0].(int64)] = true
		}
	}
	rev := map[int64]float64{}
	for _, r := range allRowsOf(t, cat, "lineitem") {
		ok := r[0].(int64)
		if orders[ok] {
			rev[ok] += r[3].(float64) * (1 - r[4].(float64))
		}
	}
	return rev
}

func TestEngineQ3MatchesReference(t *testing.T) {
	cat := genCatalog(t)
	const segment, dateMax = "BUILDING", int64(1200)
	q, err := EngineQ3(cat, segment, dateMax, false)
	if err != nil {
		t.Fatal(err)
	}
	co := &engine.Coordinator{Nodes: 4}
	res, _, err := co.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	want := q3Reference(t, cat, segment, dateMax)
	rows := res.AllRows()
	if len(rows) != len(want) {
		t.Fatalf("got %d orders, want %d", len(rows), len(want))
	}
	// Output must be sorted by revenue descending.
	for i := 1; i < len(rows); i++ {
		if rows[i][1].(float64) > rows[i-1][1].(float64) {
			t.Fatal("result not sorted by revenue desc")
		}
	}
	for _, r := range rows {
		ok := r[0].(int64)
		if math.Abs(r[1].(float64)-want[ok]) > 1e-6 {
			t.Errorf("order %d revenue = %g, want %g", ok, r[1], want[ok])
		}
	}
}

func q5Reference(t *testing.T, cat *engine.Catalog, regionKey, dateMin, dateMax int64) map[string]float64 {
	t.Helper()
	nations := map[int64]string{}
	nationInRegion := map[int64]bool{}
	for _, r := range allRowsOf(t, cat, "nation") {
		if r[1].(int64) == regionKey {
			nationInRegion[r[0].(int64)] = true
			nations[r[0].(int64)] = r[2].(string)
		}
	}
	// Deduplicate replicated nation rows.
	custNation := map[int64]int64{}
	for _, r := range allRowsOf(t, cat, "customer") {
		if nationInRegion[r[1].(int64)] {
			custNation[r[0].(int64)] = r[1].(int64)
		}
	}
	orderCust := map[int64]int64{}
	for _, r := range allRowsOf(t, cat, "orders") {
		d := r[2].(int64)
		if d >= dateMin && d < dateMax {
			if _, ok := custNation[r[1].(int64)]; ok {
				orderCust[r[0].(int64)] = r[1].(int64)
			}
		}
	}
	supNation := map[int64]int64{}
	for _, r := range allRowsOf(t, cat, "supplier") {
		supNation[r[0].(int64)] = r[1].(int64)
	}
	rev := map[string]float64{}
	for _, r := range allRowsOf(t, cat, "lineitem") {
		cust, ok := orderCust[r[0].(int64)]
		if !ok {
			continue
		}
		cn := custNation[cust]
		if supNation[r[1].(int64)] != cn {
			continue
		}
		rev[nations[cn]] += r[3].(float64) * (1 - r[4].(float64))
	}
	return rev
}

func TestEngineQ5MatchesReference(t *testing.T) {
	cat := genCatalog(t)
	const regionKey, dateMin, dateMax = int64(2), int64(0), int64(1500)
	q, err := EngineQ5(cat, regionKey, dateMin, dateMax, nil)
	if err != nil {
		t.Fatal(err)
	}
	co := &engine.Coordinator{Nodes: 4}
	res, _, err := co.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	want := q5Reference(t, cat, regionKey, dateMin, dateMax)
	// The replicated nation/region tables produce duplicate matches in the
	// broadcast join (every partition holds every nation row). The engine
	// plan scans the replicated table partition-wise, so each nation row
	// appears len(parts) times in the build side... the scan reads partition
	// p only, so each build row appears exactly once per partition. Verify
	// totals match the reference exactly.
	got := map[string]float64{}
	for _, r := range res.AllRows() {
		got[r[0].(string)] += r[1].(float64)
	}
	// Broadcast build over a replicated table multiplies matches by the
	// partition count; the reference divides that factor out if present.
	if len(got) == 0 && len(want) == 0 {
		return
	}
	scale := 0.0
	for k, v := range want {
		if got[k] == 0 && v != 0 {
			t.Fatalf("missing nation %s in result", k)
		}
		if v != 0 {
			scale = got[k] / v
			break
		}
	}
	if math.Abs(scale-1) > 1e-6 {
		t.Fatalf("unexpected duplication factor %g (should be exactly 1)", scale)
	}
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if math.Abs(got[k]-want[k]) > 1e-6 {
			t.Errorf("nation %s revenue = %g, want %g", k, got[k], want[k])
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d nations, want %d", len(got), len(want))
	}
}

func TestEngineQ5RecoversWithMaterialization(t *testing.T) {
	cat := genCatalog(t)
	const regionKey, dateMin, dateMax = int64(2), int64(0), int64(1500)

	clean, err := EngineQ5(cat, regionKey, dateMin, dateMax, nil)
	if err != nil {
		t.Fatal(err)
	}
	co := &engine.Coordinator{Nodes: 4}
	cleanRes, _, err := co.Execute(clean)
	if err != nil {
		t.Fatal(err)
	}

	// Materialize join 3 (the paper's cost-based scheme would pick a cheap
	// mid-plan checkpoint) and inject a failure into join 4.
	q, err := EngineQ5(cat, regionKey, dateMin, dateMax, map[string]bool{"q5-join3": true})
	if err != nil {
		t.Fatal(err)
	}
	co2 := &engine.Coordinator{
		Nodes:    4,
		Injector: engine.NewScriptedFailures().Add("q5-join4", 1, 0).Add("q5-agg", 0, 0),
	}
	res, rep, err := co2.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 2 {
		t.Errorf("failures = %d, want 2", rep.Failures)
	}
	if rep.MaterializedPartitions == 0 {
		t.Error("nothing was materialized")
	}
	gotClean := map[string]float64{}
	for _, r := range cleanRes.AllRows() {
		gotClean[r[0].(string)] += r[1].(float64)
	}
	got := map[string]float64{}
	for _, r := range res.AllRows() {
		got[r[0].(string)] += r[1].(float64)
	}
	if len(got) != len(gotClean) {
		t.Fatalf("group count differs after recovery: %d vs %d", len(got), len(gotClean))
	}
	for k, v := range gotClean {
		if math.Abs(got[k]-v) > 1e-6 {
			t.Errorf("nation %s revenue after recovery = %g, want %g", k, got[k], v)
		}
	}
}

func TestEngineQ3WithCoarseRestart(t *testing.T) {
	cat := genCatalog(t)
	q, err := EngineQ3(cat, "BUILDING", 1200, false)
	if err != nil {
		t.Fatal(err)
	}
	co := &engine.Coordinator{
		Nodes:    4,
		Coarse:   true,
		Injector: engine.NewScriptedFailures().Add("q3-join-orders-lineitem", 2, 0),
	}
	res, rep, err := co.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", rep.Restarts)
	}
	want := q3Reference(t, cat, "BUILDING", 1200)
	if len(res.AllRows()) != len(want) {
		t.Errorf("restarted query row count %d, want %d", len(res.AllRows()), len(want))
	}
}

package tpch

import (
	"fmt"

	"ftpde/internal/join"
	"ftpde/internal/plan"
	"ftpde/internal/stats"
)

// Q5JoinGraph returns the join graph of TPC-H query 5 as the paper's
// enumeration experiment uses it: the chain REGION - NATION - CUSTOMER -
// ORDERS - LINEITEM - SUPPLIER (relations carry their post-predicate
// cardinalities), which yields exactly 1344 equivalent join orders without
// cartesian products.
func Q5JoinGraph(prm Params) (*join.Graph, error) {
	prm = prm.withDefaults()
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	C := rowsCustomerPerSF * prm.SF
	O := rowsOrdersPerSF * prm.SF
	L := rowsLineitemPerSF * prm.SF
	S := rowsSupplierPerSF * prm.SF

	g := join.NewGraph()
	r := g.AddRelation(join.Relation{Name: "σ(REGION)", Rows: 1})
	n := g.AddRelation(join.Relation{Name: "NATION", Rows: rowsNation})
	c := g.AddRelation(join.Relation{Name: "CUSTOMER", Rows: C})
	o := g.AddRelation(join.Relation{Name: "σ(ORDERS)", Rows: 0.15 * O})
	l := g.AddRelation(join.Relation{Name: "LINEITEM", Rows: L})
	s := g.AddRelation(join.Relation{Name: "SUPPLIER", Rows: S})

	// Selectivities reproduce the cardinalities of the Figure 9 plan:
	// |σR ⨝ N| = 5, |... ⨝ C| = 0.2C, |... ⨝ σO| = 0.03O,
	// |... ⨝ L| = 0.12O, |... ⨝ S| = 0.024O.
	type e struct {
		a, b int
		sel  float64
	}
	for _, ed := range []e{
		{r, n, 5.0 / rowsNation},
		{n, c, 1.0 / rowsNation},
		{c, o, 1.0 / C},
		{o, l, 0.8 / O},
		{l, s, 0.2 / S},
	} {
		if err := g.AddEdge(ed.a, ed.b, ed.sel); err != nil {
			return nil, fmt.Errorf("tpch: q5 join graph: %w", err)
		}
	}
	return g, nil
}

// q5Coster derives operator costs for enumerated Q5 join trees with the same
// per-row constants as the hand-built Q5 plan, globally calibrated so the
// canonical (Figure 9) join order hits the paper's baseline runtime.
type q5Coster struct {
	cp    stats.CostParams
	scale float64
}

// ScanCosts implements join.Coster.
func (qc q5Coster) ScanCosts(rel join.Relation) (float64, float64) {
	tr, tm := qc.cp.OpCosts(rel.Rows, rel.Rows)
	return tr * qc.scale, tm * qc.scale
}

// JoinCosts implements join.Coster.
func (qc q5Coster) JoinCosts(leftCard, rightCard, outCard float64) (float64, float64) {
	tr, tm := qc.cp.OpCosts(leftCard+rightCard+outCard, outCard)
	return tr * qc.scale, tm * qc.scale
}

// Q5Coster returns a join.Coster calibrated for the given parameters.
func Q5Coster(prm Params) (join.Coster, error) {
	prm = prm.withDefaults()
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	cp := stats.CostParams{CPUPerRow: 1, WritePerRow: relativeWriteCost, Nodes: prm.Nodes}
	// Calibrate against the canonical chain order's critical path.
	g, err := Q5JoinGraph(prm)
	if err != nil {
		return nil, err
	}
	trees, err := g.TopK(1)
	if err != nil {
		return nil, err
	}
	raw := q5Coster{cp: cp, scale: 1}
	p, _ := join.ToPlan(trees[0], g, raw)
	crit := stats.CriticalPath(p)
	if crit <= 0 {
		return nil, fmt.Errorf("tpch: q5 coster calibration failed")
	}
	target := baselineQ5AtSF100 * prm.SF / 100
	return q5Coster{cp: cp, scale: target / crit}, nil
}

// Q5PlanFromTree converts an enumerated Q5 join order into a fault-tolerance-
// ready execution plan: scans bound non-materializable, joins free, and the
// paper's aggregation operator stacked (bound) on top. The plan's free
// operator count is always 5, so each join order contributes 2^5 = 32
// materialization configurations — 43,008 fault-tolerant plans over all 1344
// orders (paper Section 5.5).
func Q5PlanFromTree(t *join.Tree, g *join.Graph, coster join.Coster) *plan.Plan {
	p, root := join.ToPlan(t, g, coster)
	for _, op := range p.Operators() {
		if op.Kind == plan.KindScan {
			op.Bound = true
		}
	}
	aggWork := p.Op(root).Rows
	tr, _ := coster.JoinCosts(aggWork, 0, 5)
	agg := p.Add(plan.Operator{
		Name: "Γ revenue group by nation", Kind: plan.KindAggregate,
		RunCost: tr, MatCost: tr / 2, Bound: true, Rows: 5,
	})
	p.MustConnect(root, agg)
	return p
}

package tpch

import (
	"fmt"

	"ftpde/internal/engine"
)

// Engine-executable query trees for the real engine at small scale factors.
// These exercise the same plan shapes as the cost-level plans; correctness
// is validated against naive reference implementations in tests, including
// under injected failures.

// EngineQ1 builds TPC-H Q1 (pricing summary): filter LINEITEM on shipdate,
// aggregate by (returnflag, linestatus).
func EngineQ1(cat *engine.Catalog, shipdateMax int64) (engine.Operator, error) {
	li, err := cat.Table("lineitem")
	if err != nil {
		return nil, err
	}
	s := li.Schema
	scan := engine.NewScan("q1-scan-lineitem", li,
		engine.Cmp{Op: engine.LE, L: engine.Col(s.MustCol("l_shipdate")), R: engine.Const{V: shipdateMax}},
		nil)
	agg := engine.NewHashAggregate("q1-agg", scan,
		[]int{s.MustCol("l_returnflag"), s.MustCol("l_linestatus")},
		[]engine.AggSpec{
			{Kind: engine.AggSum, Col: s.MustCol("l_quantity")},
			{Kind: engine.AggSum, Col: s.MustCol("l_extendedprice")},
			{Kind: engine.AggAvg, Col: s.MustCol("l_extendedprice")},
			{Kind: engine.AggCount},
		},
		true,
		engine.Schema{
			{Name: "returnflag", Type: engine.TypeString},
			{Name: "linestatus", Type: engine.TypeString},
			{Name: "sum_qty", Type: engine.TypeFloat},
			{Name: "sum_price", Type: engine.TypeFloat},
			{Name: "avg_price", Type: engine.TypeFloat},
			{Name: "count", Type: engine.TypeInt},
		})
	return agg, nil
}

// EngineQ3 builds TPC-H Q3 (shipping priority, simplified): customers of a
// market segment joined with their orders before a date and the orders'
// lineitems, revenue aggregated per order, sorted descending.
func EngineQ3(cat *engine.Catalog, segment string, dateMax int64, materializeJoins bool) (engine.Operator, error) {
	cust, err := cat.Table("customer")
	if err != nil {
		return nil, err
	}
	ord, err := cat.Table("orders")
	if err != nil {
		return nil, err
	}
	li, err := cat.Table("lineitem")
	if err != nil {
		return nil, err
	}
	cs, os, ls := cust.Schema, ord.Schema, li.Schema

	scanC := engine.NewScan("q3-scan-customer", cust,
		engine.Cmp{Op: engine.EQ, L: engine.Col(cs.MustCol("c_mktsegment")), R: engine.Const{V: segment}},
		[]int{cs.MustCol("c_custkey")})
	scanO := engine.NewScan("q3-scan-orders", ord,
		engine.Cmp{Op: engine.LT, L: engine.Col(os.MustCol("o_orderdate")), R: engine.Const{V: dateMax}},
		nil)
	// Probe orders against the (typically smaller) filtered customers.
	// Output: o_orderkey, o_custkey, o_orderdate, c_custkey.
	j1 := engine.NewHashJoin("q3-join-cust-orders", scanC, scanO, 0, os.MustCol("o_custkey"))
	scanL := engine.NewScan("q3-scan-lineitem", li, nil,
		[]int{ls.MustCol("l_orderkey"), ls.MustCol("l_extendedprice"), ls.MustCol("l_discount")})
	// Probe lineitem against the matched orders. Output: l_orderkey, price,
	// discount, o_orderkey, o_custkey, o_orderdate, c_custkey.
	j2 := engine.NewHashJoin("q3-join-orders-lineitem", j1, scanL, 0, 0)
	if materializeJoins {
		j1.SetMaterialize(true)
		j2.SetMaterialize(true)
	}
	// revenue = price * (1 - discount)
	rev := engine.NewProject("q3-revenue", j2,
		[]engine.Expr{
			engine.Col(0),
			engine.Arith{Op: engine.Mul, L: engine.Col(1),
				R: engine.Arith{Op: engine.Sub, L: engine.Const{V: 1.0}, R: engine.Col(2)}},
		},
		engine.Schema{{Name: "orderkey", Type: engine.TypeInt}, {Name: "revenue", Type: engine.TypeFloat}})
	ex := engine.NewExchange("q3-exchange-orderkey", rev, 0)
	agg := engine.NewHashAggregate("q3-agg", ex, []int{0},
		[]engine.AggSpec{{Kind: engine.AggSum, Col: 1}},
		false,
		engine.Schema{{Name: "orderkey", Type: engine.TypeInt}, {Name: "revenue", Type: engine.TypeFloat}})
	sorted := engine.NewSort("q3-sort", agg, 1, true)
	return sorted, nil
}

// EngineQ1C builds a DAG-shaped variant of Q1 (above-average lineitems): one
// shared LINEITEM scan feeds both a global per-returnflag AVG(quantity)
// aggregate and, through a materialized join on the flag, the probe side that
// keeps only lineitems above their flag's average before the final grouped
// count/sum. The shared scan makes the plan a DAG, not a tree.
func EngineQ1C(cat *engine.Catalog, shipdateMax int64) (engine.Operator, error) {
	li, err := cat.Table("lineitem")
	if err != nil {
		return nil, err
	}
	s := li.Schema
	// Output: l_returnflag, l_linestatus, l_quantity, l_extendedprice.
	scan := engine.NewScan("q1c-scan-lineitem", li,
		engine.Cmp{Op: engine.LE, L: engine.Col(s.MustCol("l_shipdate")), R: engine.Const{V: shipdateMax}},
		[]int{s.MustCol("l_returnflag"), s.MustCol("l_linestatus"),
			s.MustCol("l_quantity"), s.MustCol("l_extendedprice")})
	avg := engine.NewHashAggregate("q1c-avg", scan, []int{0},
		[]engine.AggSpec{{Kind: engine.AggAvg, Col: 2}},
		true,
		engine.Schema{
			{Name: "returnflag", Type: engine.TypeString},
			{Name: "avg_qty", Type: engine.TypeFloat},
		})
	// Build the tiny per-flag averages, probe the shared scan. Output:
	// flag, status, qty, price, flag(avg side), avg_qty.
	join := engine.NewHashJoin("q1c-join", avg, scan, 0, 0)
	join.SetMaterialize(true)
	sel := engine.NewSelect("q1c-above-avg", join, engine.And{
		engine.Cmp{Op: engine.EQ, L: engine.Col(0), R: engine.Col(4)},
		engine.Cmp{Op: engine.GT, L: engine.Col(2), R: engine.Col(5)},
	})
	proj := engine.NewProject("q1c-proj", sel,
		[]engine.Expr{engine.Col(0), engine.Col(1), engine.Col(3)},
		engine.Schema{
			{Name: "returnflag", Type: engine.TypeString},
			{Name: "linestatus", Type: engine.TypeString},
			{Name: "price", Type: engine.TypeFloat},
		})
	agg := engine.NewHashAggregate("q1c-agg", proj, []int{0, 1},
		[]engine.AggSpec{
			{Kind: engine.AggCount},
			{Kind: engine.AggSum, Col: 2},
		},
		true,
		engine.Schema{
			{Name: "returnflag", Type: engine.TypeString},
			{Name: "linestatus", Type: engine.TypeString},
			{Name: "count", Type: engine.TypeInt},
			{Name: "sum_price", Type: engine.TypeFloat},
		})
	return agg, nil
}

// EngineQ2C builds a DAG-shaped variant of Q2 (minimum-cost suppliers): the
// partition-wise MIN(ps_supplycost) per part is materialized and consumed by
// two branches — a join against small parts and a plain filter on expensive
// minimums — whose union is sorted and limited. The materialized aggregate
// with two consumers makes the plan a DAG.
func EngineQ2C(cat *engine.Catalog, sizeMax int64, costMin float64) (engine.Operator, error) {
	ps, err := cat.Table("partsupp")
	if err != nil {
		return nil, err
	}
	pt, err := cat.Table("part")
	if err != nil {
		return nil, err
	}
	// Output: ps_partkey, ps_supplycost.
	scanPS := engine.NewScan("q2c-scan-partsupp", ps, nil,
		[]int{ps.Schema.MustCol("ps_partkey"), ps.Schema.MustCol("ps_supplycost")})
	ex := engine.NewExchange("q2c-exchange", scanPS, 0)
	minSchema := engine.Schema{
		{Name: "partkey", Type: engine.TypeInt},
		{Name: "mincost", Type: engine.TypeFloat},
	}
	minAgg := engine.NewHashAggregate("q2c-mincost", ex, []int{0},
		[]engine.AggSpec{{Kind: engine.AggMin, Col: 1}},
		false, minSchema)
	minAgg.SetMaterialize(true)

	// Branch A: minimum costs of small parts. Build the filtered parts, probe
	// the shared aggregate. Output: partkey, mincost, p_partkey.
	scanP := engine.NewScan("q2c-scan-part", pt,
		engine.Cmp{Op: engine.LT, L: engine.Col(pt.Schema.MustCol("p_size")), R: engine.Const{V: sizeMax}},
		[]int{pt.Schema.MustCol("p_partkey")})
	join := engine.NewHashJoin("q2c-join-part", scanP, minAgg, 0, 0)
	cheap := engine.NewProject("q2c-cheap", join,
		[]engine.Expr{engine.Col(0), engine.Col(1)}, minSchema)

	// Branch B: parts whose cheapest supplier is still expensive.
	pricey := engine.NewSelect("q2c-pricey", minAgg,
		engine.Cmp{Op: engine.GT, L: engine.Col(1), R: engine.Const{V: costMin}})
	priceyProj := engine.NewProject("q2c-pricey-proj", pricey,
		[]engine.Expr{engine.Col(0), engine.Col(1)}, minSchema)

	union, err := engine.NewUnionAll("q2c-union", cheap, priceyProj)
	if err != nil {
		return nil, err
	}
	sorted := engine.NewSort("q2c-sort", union, 1, true)
	return engine.NewLimit("q2c-limit", sorted, 50), nil
}

// EngineQ5 builds TPC-H Q5 (local supplier volume, simplified): the Figure 9
// chain σ(REGION) ⨝ NATION ⨝ CUSTOMER ⨝ ORDERS ⨝ LINEITEM ⨝ SUPPLIER with
// the c_nationkey = s_nationkey condition applied as a post-join filter,
// aggregating revenue per nation.
func EngineQ5(cat *engine.Catalog, regionKey int64, dateMin, dateMax int64, materialize map[string]bool) (engine.Operator, error) {
	get := func(name string) *engine.Table {
		t, err := cat.Table(name)
		if err != nil {
			panic(err)
		}
		return t
	}
	region, nation, cust := get("region"), get("nation"), get("customer")
	ord, li, sup := get("orders"), get("lineitem"), get("supplier")

	scanR := engine.NewScanOnce("q5-scan-region", region,
		engine.Cmp{Op: engine.EQ, L: engine.Col(region.Schema.MustCol("r_regionkey")), R: engine.Const{V: regionKey}},
		[]int{region.Schema.MustCol("r_regionkey")})
	scanN := engine.NewScanOnce("q5-scan-nation", nation, nil, nil)
	// j1: nation rows of the region. Probe nation (replicated) against the
	// single region row. Output: n_nationkey, n_regionkey, n_name, r_regionkey.
	j1 := engine.NewHashJoin("q5-join1", scanR, scanN, 0, nation.Schema.MustCol("n_regionkey"))

	scanC := engine.NewScan("q5-scan-customer", cust, nil,
		[]int{cust.Schema.MustCol("c_custkey"), cust.Schema.MustCol("c_nationkey")})
	// j2: customers in the region. Probe customer against j1 on nationkey.
	// Output: c_custkey, c_nationkey, n_nationkey, n_regionkey, n_name, r_regionkey.
	j2 := engine.NewHashJoin("q5-join2", j1, scanC, 0, 1)

	scanO := engine.NewScan("q5-scan-orders", ord,
		engine.And{
			engine.Cmp{Op: engine.GE, L: engine.Col(ord.Schema.MustCol("o_orderdate")), R: engine.Const{V: dateMin}},
			engine.Cmp{Op: engine.LT, L: engine.Col(ord.Schema.MustCol("o_orderdate")), R: engine.Const{V: dateMax}},
		},
		[]int{ord.Schema.MustCol("o_orderkey"), ord.Schema.MustCol("o_custkey")})
	// j3: orders of those customers in the date range. Probe orders against
	// j2 on custkey. Output: o_orderkey, o_custkey, then j2's columns.
	j3 := engine.NewHashJoin("q5-join3", j2, scanO, 0, 1)

	scanL := engine.NewScan("q5-scan-lineitem", li, nil,
		[]int{li.Schema.MustCol("l_orderkey"), li.Schema.MustCol("l_suppkey"),
			li.Schema.MustCol("l_extendedprice"), li.Schema.MustCol("l_discount")})
	// j4: lineitems of those orders. Probe lineitem against j3 on orderkey.
	// Output: l_orderkey, l_suppkey, price, discount, then j3's columns.
	j4 := engine.NewHashJoin("q5-join4", j3, scanL, 0, 0)

	scanS := engine.NewScan("q5-scan-supplier", sup, nil, nil)
	// j5: attach the supplier. Build suppliers, probe j4 on suppkey.
	// Output: j4's columns, then s_suppkey, s_nationkey.
	j5 := engine.NewHashJoin("q5-join5", scanS, j4, 0, 1)
	j4Width := 4 + 2 + 6 // l-cols + o-cols + j2-cols
	sNationCol := j4Width + 1
	cNationCol := 4 + 2 + 1 // c_nationkey inside j2 block
	local := engine.NewSelect("q5-local-supplier", j5,
		engine.Cmp{Op: engine.EQ, L: engine.Col(sNationCol), R: engine.Col(cNationCol)})

	nNameCol := 4 + 2 + 4 // n_name inside j2 block
	rev := engine.NewProject("q5-revenue", local,
		[]engine.Expr{
			engine.Col(nNameCol),
			engine.Arith{Op: engine.Mul, L: engine.Col(2),
				R: engine.Arith{Op: engine.Sub, L: engine.Const{V: 1.0}, R: engine.Col(3)}},
		},
		engine.Schema{{Name: "nation", Type: engine.TypeString}, {Name: "revenue", Type: engine.TypeFloat}})
	agg := engine.NewHashAggregate("q5-agg", rev, []int{0},
		[]engine.AggSpec{{Kind: engine.AggSum, Col: 1}},
		true,
		engine.Schema{{Name: "nation", Type: engine.TypeString}, {Name: "revenue", Type: engine.TypeFloat}})

	for name, m := range materialize {
		if !m {
			continue
		}
		found := false
		for _, op := range []interface {
			Name() string
			SetMaterialize(bool)
		}{j1, j2, j3, j4, j5} {
			if op.Name() == name {
				op.SetMaterialize(true)
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("tpch: unknown materialization target %q", name)
		}
	}
	return agg, nil
}

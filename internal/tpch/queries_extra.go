package tpch

import (
	"ftpde/internal/plan"
)

// Additional TPC-H queries beyond the five the paper evaluates; used by the
// mixed-workload generator and available to library users. Baselines at
// SF = 100 (seconds), scaled linearly like the main five.
const (
	baselineQ6AtSF100  = 120.0
	baselineQ10AtSF100 = 600.0
	baselineQ12AtSF100 = 300.0
)

// Q6 builds TPC-H query 6 (forecasting revenue change): a single filtered
// scan of LINEITEM with a global aggregate — like Q1 it has no free
// operator, making it a pure short-interactive workload item.
func Q6(prm Params) (*Query, error) {
	prm = prm.withDefaults()
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	L := rowsLineitemPerSF * prm.SF
	b := newBuilder()
	scan := b.add("Scan σ(LINEITEM) date,discount,qty", plan.KindScan, 100, 30, 0.02*L, true)
	b.add("Γ sum(price*discount)", plan.KindAggregate, 20, 0.01, 1, true, scan)
	return b.finish("Q6", baselineQ6AtSF100*prm.SF/100)
}

// Q10 builds TPC-H query 10 (returned item reporting): CUSTOMER x σ(ORDERS)
// x σ(LINEITEM) x NATION, revenue per customer, top 20. Three joins and the
// mid-plan aggregation are free (the aggregation is followed by the top-20
// sort).
func Q10(prm Params) (*Query, error) {
	prm = prm.withDefaults()
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	C := rowsCustomerPerSF * prm.SF
	O := rowsOrdersPerSF * prm.SF
	L := rowsLineitemPerSF * prm.SF
	b := newBuilder()
	sc := b.add("Scan CUSTOMER", plan.KindScan, 15, 40, C, true)
	so := b.add("Scan σ(ORDERS) quarter", plan.KindScan, 30, 30, 0.04*O, true)
	sl := b.add("Scan σ(LINEITEM) returnflag", plan.KindScan, 50, 150, 0.25*L, true)
	sn := b.add("Scan NATION", plan.KindScan, 0.5, 0.01, rowsNation, true)
	j1 := b.add("⨝ orders-lineitem", plan.KindHashJoin, 120, 40, 0.06*O, false, so, sl)
	j2 := b.add("⨝ customer-orders", plan.KindHashJoin, 150, 45, 0.06*O, false, sc, j1)
	j3 := b.add("⨝ nation", plan.KindHashJoin, 60, 45, 0.06*O, false, sn, j2)
	agg := b.add("Γ revenue by customer", plan.KindAggregate, 90, 12, 0.03*C, false, j3)
	b.add("sort/limit 20", plan.KindSort, 30, 0.01, 20, true, agg)
	return b.finish("Q10", baselineQ10AtSF100*prm.SF/100)
}

// Q12 builds TPC-H query 12 (shipping modes and order priority): ORDERS x
// σ(LINEITEM), grouped by ship mode. One free join; the final aggregation is
// the sink.
func Q12(prm Params) (*Query, error) {
	prm = prm.withDefaults()
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	O := rowsOrdersPerSF * prm.SF
	L := rowsLineitemPerSF * prm.SF
	b := newBuilder()
	so := b.add("Scan ORDERS", plan.KindScan, 40, 100, O, true)
	sl := b.add("Scan σ(LINEITEM) shipmode,date", plan.KindScan, 70, 20, 0.01*L, true)
	j := b.add("⨝ orders-lineitem", plan.KindHashJoin, 150, 25, 0.01*L, false, so, sl)
	b.add("Γ counts by shipmode", plan.KindAggregate, 40, 0.01, 7, true, j)
	return b.finish("Q12", baselineQ12AtSF100*prm.SF/100)
}

// ExtendedQueries returns the paper's five evaluated queries plus Q6, Q10
// and Q12.
func ExtendedQueries(prm Params) ([]*Query, error) {
	out, err := Queries(prm)
	if err != nil {
		return nil, err
	}
	for _, f := range []func(Params) (*Query, error){Q6, Q10, Q12} {
		q, err := f(prm)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

package plan

import "testing"

func TestRandomDAGAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		for _, n := range []int{1, 2, 5, 12, 30} {
			p := RandomDAG(seed, n)
			if err := p.Validate(); err != nil {
				t.Fatalf("seed %d n %d: %v", seed, n, err)
			}
			if p.Len() != n {
				t.Fatalf("seed %d: got %d ops, want %d", seed, p.Len(), n)
			}
			if len(p.Sources()) == 0 || len(p.Sinks()) == 0 {
				t.Fatalf("seed %d: missing sources or sinks", seed)
			}
		}
	}
}

func TestRandomDAGDeterministic(t *testing.T) {
	a := RandomDAG(7, 15)
	b := RandomDAG(7, 15)
	if a.String() != b.String() {
		t.Error("same seed produced different plans")
	}
	for _, id := range a.OperatorIDs() {
		oa, ob := a.Op(id), b.Op(id)
		if oa.RunCost != ob.RunCost || oa.MatCost != ob.MatCost || oa.Materialize != ob.Materialize {
			t.Fatalf("operator %d differs between identical seeds", id)
		}
	}
}

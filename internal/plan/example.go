package plan

// PaperExample builds the running example of the paper (Figures 2 and 3):
//
//	1: Scan R    ─┐
//	              ├─ 3: Hash Join ── 4: Repartition ── 5: Map UDF ─┬─ 6: Reduce UDF
//	2: Scan S    ─┘                                                └─ 7: Reduce UDF
//
// with the materialization configuration of Figure 3 (operators 3, 5, 6 and 7
// materialize). Operator costs are chosen so that, with CONSTpipe = 1, the
// collapsed operators have exactly the total runtimes of Table 2:
// t({1,2,3}) = 4, t({4,5}) = 3, t({6}) = 1, t({7}) = 2.
func PaperExample() *Plan {
	p := New()
	scanR := p.Add(Operator{Name: "Scan R", Kind: KindScan, RunCost: 1.0, MatCost: 2.0})
	scanS := p.Add(Operator{Name: "Scan S", Kind: KindScan, RunCost: 1.5, MatCost: 2.0})
	join := p.Add(Operator{Name: "Hash Join", Kind: KindHashJoin, RunCost: 2.0, MatCost: 0.5, Materialize: true})
	repart := p.Add(Operator{Name: "Repartition", Kind: KindRepartition, RunCost: 1.0, MatCost: 1.0})
	mapUDF := p.Add(Operator{Name: "Map UDF", Kind: KindMapUDF, RunCost: 1.5, MatCost: 0.5, Materialize: true})
	red1 := p.Add(Operator{Name: "Reduce UDF", Kind: KindReduceUDF, RunCost: 0.8, MatCost: 0.2, Materialize: true})
	red2 := p.Add(Operator{Name: "Reduce UDF", Kind: KindReduceUDF, RunCost: 1.7, MatCost: 0.3, Materialize: true})
	p.MustConnect(scanR, join)
	p.MustConnect(scanS, join)
	p.MustConnect(join, repart)
	p.MustConnect(repart, mapUDF)
	p.MustConnect(mapUDF, red1)
	p.MustConnect(mapUDF, red2)
	return p
}

package plan

import (
	"fmt"
	"sort"
	"strings"
)

// MatConfig is a materialization configuration M_P: for each operator ID it
// records whether the operator's output is materialized. Operators absent
// from the map keep their current flag.
type MatConfig map[OpID]bool

// Apply copies the configuration into the plan's operators. Bound operators
// may not be reconfigured; attempting to flip one returns an error.
func (p *Plan) Apply(cfg MatConfig) error {
	for id, m := range cfg {
		op := p.ops[id]
		if op == nil {
			return fmt.Errorf("plan: config references unknown operator %d", id)
		}
		if op.Bound && op.Materialize != m {
			return fmt.Errorf("plan: config flips bound operator %d (%s)", id, op.Name)
		}
		op.Materialize = m
	}
	return nil
}

// Config extracts the current materialization configuration of the plan.
func (p *Plan) Config() MatConfig {
	cfg := make(MatConfig, len(p.order))
	for _, id := range p.order {
		cfg[id] = p.ops[id].Materialize
	}
	return cfg
}

// ConfigFromMask builds a MatConfig for the given free operators where bit i
// of mask controls free[i]. This is the enumeration primitive: mask ranges
// over [0, 2^len(free)).
func ConfigFromMask(free []OpID, mask uint64) MatConfig {
	cfg := make(MatConfig, len(free))
	for i, id := range free {
		cfg[id] = mask&(1<<uint(i)) != 0
	}
	return cfg
}

// Mask is the inverse of ConfigFromMask for the given free-operator order.
func (cfg MatConfig) Mask(free []OpID) uint64 {
	var mask uint64
	for i, id := range free {
		if cfg[id] {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// Materialized returns the sorted IDs set to true.
func (cfg MatConfig) Materialized() []OpID {
	var out []OpID
	for id, m := range cfg {
		if m {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders e.g. "{3,5}" — the set of materialized operators.
func (cfg MatConfig) String() string {
	ids := cfg.Materialized()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// AllMat returns a configuration materializing every free operator (plus the
// existing flags for bound ones) — the Hadoop-style strategy.
func AllMat(p *Plan) MatConfig {
	cfg := p.Config()
	for _, id := range p.FreeOperators() {
		cfg[id] = true
	}
	return cfg
}

// NoMat returns a configuration materializing no free operator — the
// lineage/restart strategies' configuration.
func NoMat(p *Plan) MatConfig {
	cfg := p.Config()
	for _, id := range p.FreeOperators() {
		cfg[id] = false
	}
	return cfg
}

package plan

import (
	"testing"
)

func linearPlan(costs ...float64) *Plan {
	p := New()
	var prev OpID
	for i, c := range costs {
		id := p.Add(Operator{Name: "op", Kind: KindFilter, RunCost: c, MatCost: c / 10})
		if i > 0 {
			p.MustConnect(prev, id)
		}
		prev = id
	}
	return p
}

func TestAddAssignsSequentialIDs(t *testing.T) {
	p := PaperExample()
	ids := p.OperatorIDs()
	if len(ids) != 7 {
		t.Fatalf("want 7 operators, got %d", len(ids))
	}
	for i, id := range ids {
		if int(id) != i+1 {
			t.Errorf("operator %d has id %d", i, id)
		}
	}
}

func TestValidatePaperExample(t *testing.T) {
	p := PaperExample()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSourcesSinks(t *testing.T) {
	p := PaperExample()
	srcs := p.Sources()
	if len(srcs) != 2 || srcs[0] != 1 || srcs[1] != 2 {
		t.Errorf("sources = %v, want [1 2]", srcs)
	}
	sinks := p.Sinks()
	if len(sinks) != 2 || sinks[0] != 6 || sinks[1] != 7 {
		t.Errorf("sinks = %v, want [6 7]", sinks)
	}
}

func TestConnectErrors(t *testing.T) {
	p := New()
	a := p.Add(Operator{Name: "a"})
	b := p.Add(Operator{Name: "b"})
	if err := p.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := p.Connect(a, b); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := p.Connect(a, a); err == nil {
		t.Error("self edge accepted")
	}
	if err := p.Connect(a, 99); err == nil {
		t.Error("unknown consumer accepted")
	}
	if err := p.Connect(99, a); err == nil {
		t.Error("unknown producer accepted")
	}
}

func TestCycleDetection(t *testing.T) {
	p := New()
	a := p.Add(Operator{Name: "a"})
	b := p.Add(Operator{Name: "b"})
	c := p.Add(Operator{Name: "c"})
	p.MustConnect(a, b)
	p.MustConnect(b, c)
	p.MustConnect(c, a)
	if err := p.Validate(); err == nil {
		t.Error("cyclic plan accepted")
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	empty := New()
	if err := empty.Validate(); err == nil {
		t.Error("empty plan accepted")
	}

	neg := New()
	neg.Add(Operator{Name: "bad", RunCost: -1})
	if err := neg.Validate(); err == nil {
		t.Error("negative run cost accepted")
	}

	disc := New()
	a := disc.Add(Operator{Name: "a"})
	b := disc.Add(Operator{Name: "b"})
	disc.Add(Operator{Name: "island"})
	disc.MustConnect(a, b)
	if err := disc.Validate(); err == nil {
		t.Error("disconnected operator accepted")
	}
}

func TestTopoOrder(t *testing.T) {
	p := PaperExample()
	order, err := p.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[OpID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, from := range p.OperatorIDs() {
		for _, to := range p.Outputs(from) {
			if pos[from] >= pos[to] {
				t.Errorf("topo violation: %d not before %d", from, to)
			}
		}
	}
}

func TestPathsPaperExample(t *testing.T) {
	p := PaperExample()
	paths := p.Paths()
	// Two sources x two sinks, single route between each pair -> 4 paths.
	if len(paths) != 4 {
		t.Fatalf("want 4 paths, got %d: %v", len(paths), paths)
	}
	for _, pt := range paths {
		if pt[len(pt)-1] != 6 && pt[len(pt)-1] != 7 {
			t.Errorf("path does not end at a sink: %v", pt)
		}
		if pt[0] != 1 && pt[0] != 2 {
			t.Errorf("path does not start at a source: %v", pt)
		}
	}
}

func TestVisitPathsEarlyStop(t *testing.T) {
	p := PaperExample()
	count := 0
	p.VisitPaths(func(Path) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("VisitPaths did not stop early: visited %d", count)
	}
}

func TestFreeOperators(t *testing.T) {
	p := PaperExample()
	if got := len(p.FreeOperators()); got != 7 {
		t.Errorf("want 7 free operators, got %d", got)
	}
	p.Op(4).Bound = true
	if got := len(p.FreeOperators()); got != 6 {
		t.Errorf("after binding one: want 6, got %d", got)
	}
}

func TestMatConfigMaskRoundTrip(t *testing.T) {
	p := PaperExample()
	free := p.FreeOperators()
	for mask := uint64(0); mask < 1<<uint(len(free)); mask += 13 {
		cfg := ConfigFromMask(free, mask)
		if got := cfg.Mask(free); got != mask {
			t.Fatalf("mask round trip: %d -> %d", mask, got)
		}
	}
}

func TestApplyConfig(t *testing.T) {
	p := PaperExample()
	cfg := NoMat(p)
	if err := p.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	for _, op := range p.Operators() {
		if op.Materialize {
			t.Errorf("op %d still materialized after NoMat", op.ID)
		}
	}
	all := AllMat(p)
	if err := p.Apply(all); err != nil {
		t.Fatal(err)
	}
	for _, op := range p.Operators() {
		if !op.Materialize {
			t.Errorf("op %d not materialized after AllMat", op.ID)
		}
	}
}

func TestApplyConfigBoundRejected(t *testing.T) {
	p := PaperExample()
	p.Op(3).Bound = true
	p.Op(3).Materialize = true
	cfg := MatConfig{3: false}
	if err := p.Apply(cfg); err == nil {
		t.Error("flipping a bound operator was accepted")
	}
	// Same value is fine.
	if err := p.Apply(MatConfig{3: true}); err != nil {
		t.Errorf("no-op on bound operator rejected: %v", err)
	}
	if err := p.Apply(MatConfig{99: true}); err == nil {
		t.Error("unknown operator accepted")
	}
}

func TestCloneIsolation(t *testing.T) {
	p := PaperExample()
	q := p.Clone()
	q.Op(3).Materialize = false
	q.Op(3).RunCost = 999
	if !p.Op(3).Materialize || p.Op(3).RunCost == 999 {
		t.Error("clone shares operator storage with original")
	}
	nid := q.Add(Operator{Name: "extra"})
	q.MustConnect(7, nid)
	if p.Len() != 7 {
		t.Error("clone shares structure with original")
	}
}

func TestTotalCosts(t *testing.T) {
	op := Operator{RunCost: 2, MatCost: 10}
	if op.TotalCost() != 2 {
		t.Errorf("pipelined total cost = %g, want 2", op.TotalCost())
	}
	op.Materialize = true
	if op.TotalCost() != 12 {
		t.Errorf("materialized total cost = %g, want 12", op.TotalCost())
	}
}

func TestPathRunCost(t *testing.T) {
	p := linearPlan(1, 2, 3)
	paths := p.Paths()
	if len(paths) != 1 {
		t.Fatalf("want 1 path, got %d", len(paths))
	}
	// No materialization: RPt = 1+2+3.
	if got := p.PathRunCost(paths[0]); got != 6 {
		t.Errorf("PathRunCost = %g, want 6", got)
	}
}

func TestReachable(t *testing.T) {
	p := PaperExample()
	r := p.Reachable(1)
	for _, want := range []OpID{3, 4, 5, 6, 7} {
		if !r[want] {
			t.Errorf("op %d should be reachable from 1", want)
		}
	}
	if r[2] || r[1] {
		t.Error("reachability includes unrelated or self")
	}
	if len(p.Reachable(6)) != 0 {
		t.Error("sink should reach nothing")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := PaperExample()
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	q := New()
	if err := q.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if q.Len() != p.Len() {
		t.Fatalf("round trip lost operators: %d != %d", q.Len(), p.Len())
	}
	for _, id := range p.OperatorIDs() {
		a, b := p.Op(id), q.Op(id)
		if a.Name != b.Name || a.Kind != b.Kind || a.RunCost != b.RunCost ||
			a.MatCost != b.MatCost || a.Materialize != b.Materialize || a.Bound != b.Bound {
			t.Errorf("operator %d differs after round trip: %+v vs %+v", id, a, b)
		}
		out1, out2 := p.Outputs(id), q.Outputs(id)
		if len(out1) != len(out2) {
			t.Errorf("operator %d edge count differs", id)
			continue
		}
		for i := range out1 {
			if out1[i] != out2[i] {
				t.Errorf("operator %d edges differ", id)
			}
		}
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	bad := []string{
		`{"operators":[{"id":0,"kind":"scan"}]}`,
		`{"operators":[{"id":1,"kind":"nope"}]}`,
		`{"operators":[{"id":1,"kind":"scan"},{"id":1,"kind":"scan"}]}`,
		`{"operators":[{"id":1,"kind":"scan"},{"id":2,"kind":"scan"}],"edges":[[1,3]]}`,
		`not json`,
	}
	for _, s := range bad {
		q := New()
		if err := q.UnmarshalJSON([]byte(s)); err == nil {
			t.Errorf("bad input accepted: %s", s)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	p := PaperExample()
	dot := p.DOT("paper example")
	for _, want := range []string{"digraph plan", "n1 -> n3", "n5 -> n7", "shape=box"} {
		if !contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

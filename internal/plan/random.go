package plan

import (
	"math/rand"
)

// RandomDAG generates a random connected DAG-structured plan with n
// operators for property-based tests and fuzzing: every non-source operator
// consumes 1-2 of the previously created operators, sources are bound scans,
// costs are drawn from [0.1, 10) for tr and [0.01, 5) for tm, and roughly a
// third of the operators start materialized. The result is always valid.
func RandomDAG(seed int64, n int) *Plan {
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	p := New()
	var ids []OpID
	for i := 0; i < n; i++ {
		op := Operator{
			Name:    "op",
			Kind:    Kind(rng.Intn(int(KindCTE) + 1)),
			RunCost: 0.1 + rng.Float64()*9.9,
			MatCost: 0.01 + rng.Float64()*4.99,
		}
		// Keep a few sources; all later operators attach to the DAG.
		isSource := i == 0 || (i < n/2 && rng.Float64() < 0.25)
		if isSource {
			op.Kind = KindScan
			op.Bound = true
			op.Materialize = false
		} else {
			op.Materialize = rng.Float64() < 0.33
			op.Bound = rng.Float64() < 0.15
		}
		id := p.Add(op)
		if !isSource {
			inputs := 1
			if rng.Float64() < 0.35 {
				inputs = 2
			}
			seen := map[OpID]bool{}
			for k := 0; k < inputs; k++ {
				src := ids[rng.Intn(len(ids))]
				if seen[src] {
					continue
				}
				seen[src] = true
				p.MustConnect(src, id)
			}
		}
		ids = append(ids, id)
	}
	// Tie any dangling non-final sinks into the last operator so the plan
	// stays connected (the last operator may legitimately be a sink).
	last := ids[len(ids)-1]
	for _, id := range ids[:len(ids)-1] {
		if len(p.Outputs(id)) == 0 && len(p.Inputs(id)) == 0 {
			p.MustConnect(id, last)
		}
	}
	return p
}

package plan

// Path is a sequence of operator IDs from a source to a sink following
// data-flow edges.
type Path []OpID

// Paths enumerates every execution path from each source to each sink via
// depth-first traversal. For DAG plans the number of paths can be exponential
// in principle; query plans are small enough that full enumeration is what
// the paper does (Listing 1, line 9), with pruning handled by the caller.
func (p *Plan) Paths() []Path {
	var out []Path
	var cur Path
	var dfs func(id OpID)
	dfs = func(id OpID) {
		cur = append(cur, id)
		children := p.children[id]
		if len(children) == 0 {
			cp := make(Path, len(cur))
			copy(cp, cur)
			out = append(out, cp)
		} else {
			for _, c := range children {
				dfs(c)
			}
		}
		cur = cur[:len(cur)-1]
	}
	for _, s := range p.Sources() {
		dfs(s)
	}
	return out
}

// VisitPaths streams paths to fn, stopping early when fn returns false.
// This supports pruning rule 3, which abandons path enumeration for a
// fault-tolerant plan as soon as one path exceeds the best memoized bound.
func (p *Plan) VisitPaths(fn func(Path) bool) {
	var cur Path
	stopped := false
	var dfs func(id OpID)
	dfs = func(id OpID) {
		if stopped {
			return
		}
		cur = append(cur, id)
		children := p.children[id]
		if len(children) == 0 {
			if !fn(cur) {
				stopped = true
			}
		} else {
			for _, c := range children {
				dfs(c)
			}
		}
		cur = cur[:len(cur)-1]
	}
	for _, s := range p.Sources() {
		if stopped {
			return
		}
		dfs(s)
	}
}

// PathRunCost returns RPt = sum of t(o) over the path — the path runtime
// without recovery costs.
func (p *Plan) PathRunCost(pt Path) float64 {
	s := 0.0
	for _, id := range pt {
		s += p.ops[id].TotalCost()
	}
	return s
}

// Reachable returns the set of operators reachable from id (excluding id)
// following data-flow edges.
func (p *Plan) Reachable(id OpID) map[OpID]bool {
	seen := make(map[OpID]bool)
	var dfs func(OpID)
	dfs = func(o OpID) {
		for _, c := range p.children[o] {
			if !seen[c] {
				seen[c] = true
				dfs(c)
			}
		}
	}
	dfs(id)
	return seen
}

package plan

import (
	"encoding/json"
	"fmt"
)

// jsonPlan is the wire representation used by MarshalJSON/UnmarshalJSON and
// by cmd/ftplan's input format.
type jsonPlan struct {
	Operators []jsonOperator `json:"operators"`
	Edges     [][2]OpID      `json:"edges"`
}

type jsonOperator struct {
	ID          OpID    `json:"id"`
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	RunCost     float64 `json:"run_cost"`
	MatCost     float64 `json:"mat_cost"`
	Materialize bool    `json:"materialize,omitempty"`
	Bound       bool    `json:"bound,omitempty"`
	Rows        float64 `json:"rows,omitempty"`
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// MarshalJSON encodes the plan as {"operators": [...], "edges": [[from,to]]}.
func (p *Plan) MarshalJSON() ([]byte, error) {
	jp := jsonPlan{}
	for _, op := range p.Operators() {
		jp.Operators = append(jp.Operators, jsonOperator{
			ID: op.ID, Name: op.Name, Kind: op.Kind.String(),
			RunCost: op.RunCost, MatCost: op.MatCost,
			Materialize: op.Materialize, Bound: op.Bound, Rows: op.Rows,
		})
	}
	for _, from := range p.OperatorIDs() {
		for _, to := range p.Outputs(from) {
			jp.Edges = append(jp.Edges, [2]OpID{from, to})
		}
	}
	return json.Marshal(jp)
}

// UnmarshalJSON decodes a plan produced by MarshalJSON (or hand-written in
// the same format). Operator IDs in the input are preserved.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var jp jsonPlan
	if err := json.Unmarshal(data, &jp); err != nil {
		return err
	}
	*p = *New()
	for _, jo := range jp.Operators {
		if jo.ID <= 0 {
			return fmt.Errorf("plan: operator id must be positive, got %d", jo.ID)
		}
		if _, dup := p.ops[jo.ID]; dup {
			return fmt.Errorf("plan: duplicate operator id %d", jo.ID)
		}
		kind, ok := kindByName[jo.Kind]
		if !ok {
			return fmt.Errorf("plan: unknown operator kind %q", jo.Kind)
		}
		op := &Operator{
			ID: jo.ID, Name: jo.Name, Kind: kind,
			RunCost: jo.RunCost, MatCost: jo.MatCost,
			Materialize: jo.Materialize, Bound: jo.Bound, Rows: jo.Rows,
		}
		p.ops[jo.ID] = op
		p.order = append(p.order, jo.ID)
		if jo.ID >= p.nextID {
			p.nextID = jo.ID + 1
		}
	}
	for _, e := range jp.Edges {
		if err := p.Connect(e[0], e[1]); err != nil {
			return err
		}
	}
	return p.Validate()
}

// Package plan models DAG-structured parallel execution plans in the style
// of Salama et al. (SIGMOD'15): a plan is a directed acyclic graph of
// operators, each annotated with partition-parallel runtime cost tr(o),
// materialization cost tm(o), a materialization flag m(o), and a free/bound
// flag f(o). Free operators may be chosen for materialization by the
// cost-based fault-tolerance optimizer; bound operators are fixed (either
// non-materializable or always-materialized).
package plan

import (
	"fmt"
	"sort"
)

// OpID identifies an operator within a plan. IDs are assigned by AddOperator
// in insertion order starting at 1, mirroring the paper's numbering.
type OpID int

// Kind classifies an operator. The fault-tolerance scheme itself treats
// operators uniformly (any operator with cost estimates is supported,
// including UDFs); kinds exist for plan construction, display, and for
// engine execution.
type Kind int

// Operator kinds.
const (
	KindScan Kind = iota
	KindFilter
	KindProject
	KindHashJoin
	KindAggregate
	KindSort
	KindLimit
	KindRepartition
	KindUnion
	KindMapUDF
	KindReduceUDF
	KindSink
	KindCTE
)

var kindNames = map[Kind]string{
	KindScan:        "scan",
	KindFilter:      "filter",
	KindProject:     "project",
	KindHashJoin:    "hashjoin",
	KindAggregate:   "aggregate",
	KindSort:        "sort",
	KindLimit:       "limit",
	KindRepartition: "repartition",
	KindUnion:       "union",
	KindMapUDF:      "map-udf",
	KindReduceUDF:   "reduce-udf",
	KindSink:        "sink",
	KindCTE:         "cte",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Operator is a node of a DAG-structured execution plan.
type Operator struct {
	ID   OpID
	Name string
	Kind Kind

	// RunCost is tr(o): the estimated accumulated execution cost of the
	// operator under partition-parallel execution, in cost units.
	RunCost float64
	// MatCost is tm(o): the estimated accumulated cost of materializing the
	// operator's output to fault-tolerant storage, in cost units.
	MatCost float64

	// Materialize is m(o): whether the operator's output is materialized
	// (blocking) or pipelined to its consumers.
	Materialize bool

	// Bound marks f(o) = 0: the materialization decision is fixed by the
	// engine (e.g. repartition outputs that are always materialized, or
	// operators marked non-materializable) and excluded from enumeration.
	Bound bool

	// Rows is the estimated output cardinality; informational (used by the
	// stats package to derive costs and by DOT export).
	Rows float64
}

// Free reports f(o) = 1: the optimizer may flip this operator's
// materialization flag.
func (o *Operator) Free() bool { return !o.Bound }

// TotalCost returns t(o) = tr(o) + tm(o)*m(o).
func (o *Operator) TotalCost() float64 {
	if o.Materialize {
		return o.RunCost + o.MatCost
	}
	return o.RunCost
}

// Plan is a DAG-structured execution plan. Edges point from producers to
// consumers (data-flow direction).
type Plan struct {
	ops      map[OpID]*Operator
	order    []OpID          // insertion order
	children map[OpID][]OpID // producer -> consumers
	parents  map[OpID][]OpID // consumer -> producers
	nextID   OpID
}

// New returns an empty plan.
func New() *Plan {
	return &Plan{
		ops:      make(map[OpID]*Operator),
		children: make(map[OpID][]OpID),
		parents:  make(map[OpID][]OpID),
		nextID:   1,
	}
}

// Add inserts op into the plan and assigns it the next ID. It returns the
// assigned ID. The operator is copied; use Op to retrieve the stored value.
func (p *Plan) Add(op Operator) OpID {
	op.ID = p.nextID
	p.nextID++
	stored := op
	p.ops[op.ID] = &stored
	p.order = append(p.order, op.ID)
	return op.ID
}

// Connect adds a data-flow edge from producer to consumer. Duplicate edges
// are rejected.
func (p *Plan) Connect(producer, consumer OpID) error {
	if _, ok := p.ops[producer]; !ok {
		return fmt.Errorf("plan: unknown producer %d", producer)
	}
	if _, ok := p.ops[consumer]; !ok {
		return fmt.Errorf("plan: unknown consumer %d", consumer)
	}
	if producer == consumer {
		return fmt.Errorf("plan: self-edge on operator %d", producer)
	}
	for _, c := range p.children[producer] {
		if c == consumer {
			return fmt.Errorf("plan: duplicate edge %d -> %d", producer, consumer)
		}
	}
	p.children[producer] = append(p.children[producer], consumer)
	p.parents[consumer] = append(p.parents[consumer], producer)
	return nil
}

// MustConnect is Connect but panics on error; for use in plan builders whose
// shape is fixed at compile time.
func (p *Plan) MustConnect(producer, consumer OpID) {
	if err := p.Connect(producer, consumer); err != nil {
		panic(err)
	}
}

// Op returns the operator with the given ID, or nil.
func (p *Plan) Op(id OpID) *Operator { return p.ops[id] }

// Len returns the number of operators.
func (p *Plan) Len() int { return len(p.order) }

// Operators returns all operators in insertion order.
func (p *Plan) Operators() []*Operator {
	out := make([]*Operator, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.ops[id])
	}
	return out
}

// OperatorIDs returns all operator IDs in insertion order.
func (p *Plan) OperatorIDs() []OpID {
	out := make([]OpID, len(p.order))
	copy(out, p.order)
	return out
}

// Inputs returns the producers feeding op, sorted by ID.
func (p *Plan) Inputs(id OpID) []OpID {
	out := make([]OpID, len(p.parents[id]))
	copy(out, p.parents[id])
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Outputs returns the consumers of op, sorted by ID.
func (p *Plan) Outputs(id OpID) []OpID {
	out := make([]OpID, len(p.children[id]))
	copy(out, p.children[id])
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sources returns operators with no inputs (e.g. scans), sorted by ID.
func (p *Plan) Sources() []OpID {
	var out []OpID
	for _, id := range p.order {
		if len(p.parents[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Sinks returns operators with no outputs (query results), sorted by ID.
func (p *Plan) Sinks() []OpID {
	var out []OpID
	for _, id := range p.order {
		if len(p.children[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// FreeOperators returns the IDs of free operators in insertion order. The
// size of the materialization-configuration search space is 2^len(result).
func (p *Plan) FreeOperators() []OpID {
	var out []OpID
	for _, id := range p.order {
		if p.ops[id].Free() {
			out = append(out, id)
		}
	}
	return out
}

// Validate checks structural invariants: at least one operator, acyclicity,
// non-negative costs, and that every operator is connected (plans with more
// than one operator must not contain isolated nodes).
func (p *Plan) Validate() error {
	if len(p.order) == 0 {
		return fmt.Errorf("plan: empty")
	}
	for _, id := range p.order {
		op := p.ops[id]
		if op.RunCost < 0 {
			return fmt.Errorf("plan: operator %d (%s) has negative run cost %g", id, op.Name, op.RunCost)
		}
		if op.MatCost < 0 {
			return fmt.Errorf("plan: operator %d (%s) has negative materialization cost %g", id, op.Name, op.MatCost)
		}
		if len(p.order) > 1 && len(p.parents[id]) == 0 && len(p.children[id]) == 0 {
			return fmt.Errorf("plan: operator %d (%s) is disconnected", id, op.Name)
		}
	}
	if _, err := p.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the operator IDs in a topological order (producers before
// consumers) or an error if the graph contains a cycle.
func (p *Plan) TopoOrder() ([]OpID, error) {
	indeg := make(map[OpID]int, len(p.order))
	for _, id := range p.order {
		indeg[id] = len(p.parents[id])
	}
	var queue []OpID
	for _, id := range p.order {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	var out []OpID
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		out = append(out, id)
		for _, c := range p.children[id] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(out) != len(p.order) {
		return nil, fmt.Errorf("plan: cycle detected (%d of %d operators ordered)", len(out), len(p.order))
	}
	return out, nil
}

// Clone returns a deep copy of the plan (operators and edges).
func (p *Plan) Clone() *Plan {
	q := New()
	q.nextID = p.nextID
	q.order = append([]OpID(nil), p.order...)
	for id, op := range p.ops {
		cp := *op
		q.ops[id] = &cp
	}
	for id, cs := range p.children {
		q.children[id] = append([]OpID(nil), cs...)
	}
	for id, ps := range p.parents {
		q.parents[id] = append([]OpID(nil), ps...)
	}
	return q
}

// TotalRunCost returns the sum of tr(o) over all operators — the plan's pure
// execution cost ignoring pipelining and materialization.
func (p *Plan) TotalRunCost() float64 {
	s := 0.0
	for _, id := range p.order {
		s += p.ops[id].RunCost
	}
	return s
}

// TotalMatCost returns the sum of tm(o) over all operators — the cost of
// materializing everything (the all-mat scheme's added cost).
func (p *Plan) TotalMatCost() float64 {
	s := 0.0
	for _, id := range p.order {
		s += p.ops[id].MatCost
	}
	return s
}

// String renders a compact single-line description.
func (p *Plan) String() string {
	return fmt.Sprintf("plan{%d ops, %d free, tr=%.2f, tm=%.2f}",
		p.Len(), len(p.FreeOperators()), p.TotalRunCost(), p.TotalMatCost())
}

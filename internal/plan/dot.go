package plan

import (
	"fmt"
	"strings"
)

// DOT renders the plan in Graphviz format. Materialized operators are drawn
// as boxes (blocking, checkpointed), pipelined operators as ellipses; bound
// operators are shaded.
func (p *Plan) DOT(title string) string {
	var b strings.Builder
	b.WriteString("digraph plan {\n")
	b.WriteString("  rankdir=BT;\n")
	if title != "" {
		fmt.Fprintf(&b, "  label=%q;\n", title)
	}
	for _, op := range p.Operators() {
		shape := "ellipse"
		if op.Materialize {
			shape = "box"
		}
		style := "solid"
		if op.Bound {
			style = "filled"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%d: %s\\ntr=%.2f tm=%.2f m=%d\", shape=%s, style=%s];\n",
			op.ID, op.ID, op.Name, op.RunCost, op.MatCost, boolToInt(op.Materialize), shape, style)
	}
	for _, from := range p.OperatorIDs() {
		for _, to := range p.Outputs(from) {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", from, to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

package service

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// TPCHQuery names one of the service's canonical workload queries.
type TPCHQuery struct {
	Name string
	Text string
}

// TPCHQueries returns the TPC-H shapes the service benchmarks and
// equivalence tests run: Q1 (scan + aggregate), Q3 (3-way join) and a
// Q5-like 6-way join — the same spread of plan depths the paper's
// experiments cover.
func TPCHQueries() []TPCHQuery {
	return []TPCHQuery{
		{"Q1", `
		SELECT l_returnflag, l_linestatus,
		       SUM(l_quantity) AS sum_qty,
		       SUM(l_extendedprice) AS sum_price,
		       COUNT(*) AS cnt
		FROM lineitem
		WHERE l_shipdate <= 1200
		GROUP BY l_returnflag, l_linestatus`},
		{"Q3", `
		SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue
		FROM customer
		JOIN orders ON c_custkey = o_custkey
		JOIN lineitem ON o_orderkey = l_orderkey
		WHERE c_mktsegment = 'BUILDING' AND o_orderdate < 1200
		GROUP BY l_orderkey
		ORDER BY revenue DESC`},
		{"Q5", `
		SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
		FROM region
		JOIN nation ON r_regionkey = n_regionkey
		JOIN supplier ON n_nationkey = s_nationkey
		JOIN lineitem ON s_suppkey = l_suppkey
		JOIN orders ON l_orderkey = o_orderkey
		JOIN customer ON o_custkey = c_custkey
		GROUP BY n_name
		ORDER BY revenue DESC`},
	}
}

// BenchConfig parameterizes the closed-loop load sweep.
type BenchConfig struct {
	// Server shape (see Config).
	SF            float64 `json:"sf"`
	Nodes         int     `json:"nodes"`
	Seed          int64   `json:"seed"`
	Workers       int     `json:"workers"`
	MaxConcurrent int     `json:"max_concurrent"`
	QueueDepth    int     `json:"queue_depth"`

	// Tenants spreads clients across this many tenant labels.
	Tenants int `json:"tenants"`
	// Clients is the offered-load sweep: one measurement arm per entry,
	// each running that many closed-loop clients.
	Clients []int `json:"clients"`
	// Duration is the measured wall time per arm.
	Duration        time.Duration `json:"-"`
	DurationSeconds float64       `json:"duration_seconds"`
	// MTBF is the injected per-node failure MTBF (seconds) of the
	// failure arm; <= 0 skips that arm.
	MTBF float64 `json:"mtbf"`
	// Addr, when non-empty, benchmarks a remote ftserve instead of an
	// in-process server (failure arms are skipped: the remote injector is
	// whatever the remote was started with).
	Addr string `json:"addr,omitempty"`
}

func (c BenchConfig) withDefaults() BenchConfig {
	if c.SF <= 0 {
		c.SF = 0.005
	}
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if len(c.Clients) == 0 {
		c.Clients = []int{1, 4, 16}
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	c.DurationSeconds = c.Duration.Seconds()
	return c
}

// ArmResult is one measured (clients, injector) operating point.
type ArmResult struct {
	Clients int `json:"clients"`
	// QPS is completed queries per second of wall time.
	QPS float64 `json:"qps"`
	// P50ms/P99ms are latency percentiles over completed queries.
	P50ms float64 `json:"p50_ms"`
	P99ms float64 `json:"p99_ms"`

	Completed int64 `json:"completed"`
	Rejected  int64 `json:"rejected"`
	Failed    int64 `json:"failed"`
	// Failures/Recovered/WastedSeconds aggregate the servers' per-tenant
	// fault accounting over the arm.
	Failures      int64   `json:"failures"`
	Recovered     int64   `json:"recovered"`
	WastedSeconds float64 `json:"wasted_seconds"`
}

// SweepPoint pairs the clean and failure-injected arms at one client count.
type SweepPoint struct {
	Clients int        `json:"clients"`
	Clean   ArmResult  `json:"clean"`
	Faults  *ArmResult `json:"failures,omitempty"`
}

// BenchDoc is the BENCH_service.json document (tools/benchdiff understands
// qps as higher-is-better and p50_ms/p99_ms as lower-is-better).
type BenchDoc struct {
	Name   string       `json:"name"`
	Config BenchConfig  `json:"config"`
	Sweep  []SweepPoint `json:"sweep"`
}

// RunSweep drives the closed-loop sweep: for each client count, a clean arm
// and (when MTBF > 0) a failure-injected arm, each against a fresh
// in-process server so arms do not share warmup state. logf may be nil.
func RunSweep(cfg BenchConfig, logf func(format string, args ...any)) (*BenchDoc, error) {
	cfg = cfg.withDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	doc := &BenchDoc{Name: "service", Config: cfg}
	for _, n := range cfg.Clients {
		clean, err := runArm(cfg, n, 0)
		if err != nil {
			return nil, err
		}
		logf("clients=%d clean: qps=%.1f p50=%.1fms p99=%.1fms rejected=%d",
			n, clean.QPS, clean.P50ms, clean.P99ms, clean.Rejected)
		pt := SweepPoint{Clients: n, Clean: clean}
		if cfg.MTBF > 0 && cfg.Addr == "" {
			faults, err := runArm(cfg, n, cfg.MTBF)
			if err != nil {
				return nil, err
			}
			logf("clients=%d faults: qps=%.1f p99=%.1fms failures=%d wasted=%.3fs",
				n, faults.QPS, faults.P99ms, faults.Failures, faults.WastedSeconds)
			pt.Faults = &faults
		}
		doc.Sweep = append(doc.Sweep, pt)
	}
	return doc, nil
}

// runArm measures one operating point with n closed-loop clients.
func runArm(cfg BenchConfig, n int, mtbf float64) (ArmResult, error) {
	addr := cfg.Addr
	var srv *Server
	if addr == "" {
		var err error
		srv, err = New(Config{
			SF: cfg.SF, Nodes: cfg.Nodes, Seed: cfg.Seed,
			Workers: cfg.Workers, MaxConcurrent: cfg.MaxConcurrent, QueueDepth: cfg.QueueDepth,
			InjectMTBF: mtbf,
		})
		if err != nil {
			return ArmResult{}, err
		}
		defer srv.Close()
		addr, err = srv.StartTCP("127.0.0.1:0")
		if err != nil {
			return ArmResult{}, err
		}
	}

	queries := TPCHQueries()
	var (
		mu        sync.Mutex
		latencies []float64
		rejected  int64
		failed    int64
		firstErr  error
	)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer c.Close()
			tenant := fmt.Sprintf("t%d", id%cfg.Tenants)
			for seq := id; time.Now().Before(deadline); seq++ {
				q := queries[seq%len(queries)]
				start := time.Now()
				resp, err := c.Do(Request{
					ID: fmt.Sprintf("c%d-%d", id, seq), Tenant: tenant,
					Query: q.Text, MaxRows: 1,
				})
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				switch resp.Code {
				case CodeOK:
					mu.Lock()
					latencies = append(latencies, time.Since(start).Seconds())
					mu.Unlock()
				case CodeBadQuery, CodeError:
					mu.Lock()
					failed++
					mu.Unlock()
				default:
					// Load shed: back off, but keep the loop closed enough
					// to re-offer load quickly.
					mu.Lock()
					rejected++
					mu.Unlock()
					backoff := time.Duration(resp.RetryAfterSeconds * float64(time.Second))
					if backoff > 50*time.Millisecond {
						backoff = 50 * time.Millisecond
					}
					time.Sleep(backoff)
				}
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return ArmResult{}, firstErr
	}

	res := ArmResult{
		Clients:   n,
		Completed: int64(len(latencies)),
		Rejected:  rejected,
		Failed:    failed,
		QPS:       float64(len(latencies)) / cfg.Duration.Seconds(),
		P50ms:     percentileMS(latencies, 0.50),
		P99ms:     percentileMS(latencies, 0.99),
	}
	if srv != nil {
		for _, t := range srv.Stats().Tenants {
			res.Failures += t.Failures
			res.Recovered += t.Recovered
			res.WastedSeconds += t.WastedSeconds
		}
	}
	return res, nil
}

// percentileMS returns the p-quantile of seconds-valued samples, in ms.
func percentileMS(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx] * 1000
}

package service

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ftpde/internal/engine"
	"ftpde/internal/obs"
)

const aggQuery = "SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag"

// TestForensicsBundleOnRecoveryExhaustion pins the failure forensics path: a
// query whose coarse restarts exhaust must leave a replayable bundle on the
// ring, with the terminal reason, the progress snapshot at death and the
// span timeline frozen inside.
func TestForensicsBundleOnRecoveryExhaustion(t *testing.T) {
	dir := t.TempDir()
	inj := engine.NewScriptedFailures()
	inj.Add("aggregate", 1, 0)
	inj.Add("aggregate", 1, 1)
	s := newTestServer(t, Config{
		Injector: inj, Coarse: true, MaxRestarts: 1,
		ForensicsDir: dir, ForensicsMax: 4,
	})

	resp, err := s.Submit(context.Background(), Request{Tenant: "victim", Query: aggQuery})
	if err == nil {
		t.Fatalf("expected recovery exhaustion, got %+v", resp)
	}
	if !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("error = %v, want abort", err)
	}

	entries, derr := os.ReadDir(dir)
	if derr != nil {
		t.Fatal(derr)
	}
	if len(entries) != 1 {
		t.Fatalf("forensics ring holds %d files, want 1", len(entries))
	}
	b, err := obs.ReadBundle(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != "recovery_exhausted" {
		t.Errorf("reason = %q, want recovery_exhausted", b.Reason)
	}
	if b.Tenant != "victim" || b.Query != aggQuery {
		t.Errorf("identity lost: tenant=%q query=%q", b.Tenant, b.Query)
	}
	if b.Error == "" || !strings.Contains(b.Error, "aborted") {
		t.Errorf("bundle error = %q", b.Error)
	}
	if len(b.Spans) == 0 {
		t.Error("bundle carries no spans")
	}
	if b.Progress == nil || b.Progress.Failures < 2 || b.Progress.Attempts < 2 {
		t.Errorf("progress at death = %+v", b.Progress)
	}
	if b.Audit == nil {
		t.Error("bundle carries no audit")
	}
	// The rendered replay (what ftsql -replay-bundle prints) must summarize
	// the death without re-executing anything.
	out := b.String()
	for _, want := range []string{"reason=recovery_exhausted", "tenant=victim", "progress at death", "span timeline"} {
		if !strings.Contains(out, want) {
			t.Errorf("replay output missing %q:\n%s", want, out)
		}
	}

	// The shared registry counts the bundle; the dead query sits in the
	// recent ring of /debug/queries with its terminal error.
	fam := s.Registry().Snapshot().Family("ftpde_forensics_bundles_total")
	if fam == nil || len(fam.Series) != 1 || fam.Series[0].Value != 1 {
		t.Errorf("ftpde_forensics_bundles_total = %+v", fam)
	}
	snap := s.Progress().Snapshot()
	if len(snap.Active) != 0 || len(snap.Recent) != 1 || snap.Recent[0].Err == "" {
		t.Errorf("progress registry after death: %+v", snap)
	}
}

// TestForensicsRingBoundAcrossQueries: repeated aborts never grow the ring
// past its bound.
func TestForensicsRingBoundAcrossQueries(t *testing.T) {
	dir := t.TempDir()
	// The script is membership-based, so every query's attempts 0 and 1 fail
	// and, with MaxRestarts 1, every query aborts.
	inj := engine.NewScriptedFailures()
	inj.Add("aggregate", 1, 0)
	inj.Add("aggregate", 1, 1)
	s := newTestServer(t, Config{
		Injector: inj, Coarse: true, MaxRestarts: 1,
		ForensicsDir: dir, ForensicsMax: 2,
	})
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(context.Background(), Request{Tenant: "t", Query: aggQuery}); err == nil {
			t.Fatalf("query %d did not abort", i)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("ring holds %d bundles, want 2", len(entries))
	}
}

// TestDebugQueriesConcurrentWithFailures drives multiple tenants through the
// shared pool under hot Poisson failure injection while hammering
// /debug/queries and /metrics from other goroutines — the race-detector
// coverage for Progress updates racing snapshots. Results must still match
// the serial baseline, and the drift detector must have ingested every
// successful query.
func TestDebugQueriesConcurrentWithFailures(t *testing.T) {
	want := serialBaseline(t, Config{})
	s := newTestServer(t, Config{Workers: 3, InjectMTBF: 0.02})
	addr, err := s.StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var pollWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get("http://" + addr + "/debug/queries")
				if err != nil {
					continue
				}
				var snap obs.QueriesSnapshot
				if derr := json.NewDecoder(resp.Body).Decode(&snap); derr != nil {
					t.Errorf("/debug/queries JSON: %v", derr)
				}
				resp.Body.Close()
				if mresp, err := http.Get("http://" + addr + "/metrics"); err == nil {
					mresp.Body.Close()
				}
			}
		}()
	}

	const rounds = 3
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for _, q := range TPCHQueries() {
			wg.Add(1)
			go func(r int, q TPCHQuery) {
				defer wg.Done()
				resp, err := s.Submit(context.Background(), Request{Tenant: q.Name, Query: q.Text})
				if err != nil {
					t.Errorf("%s/%d: %v", q.Name, r, err)
					return
				}
				if len(resp.Rows) != len(want[q.Name].Rows) {
					t.Errorf("%s/%d: %d rows, want %d", q.Name, r, len(resp.Rows), len(want[q.Name].Rows))
				}
			}(r, q)
		}
	}
	wg.Wait()
	close(done)
	pollWG.Wait()

	total := rounds * len(TPCHQueries())
	snap := s.Progress().Snapshot()
	if len(snap.Active) != 0 {
		t.Errorf("queries still active after completion: %+v", snap.Active)
	}
	if len(snap.Recent) == 0 {
		t.Error("no recent queries tracked")
	}
	if got := s.Drift().Snapshot().Queries; got != total {
		t.Errorf("drift detector observed %d queries, want %d", got, total)
	}
}

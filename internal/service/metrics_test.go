package service

import (
	"context"
	"math"
	"strings"
	"testing"
)

// TestPerTenantMetricsAndWastedAttribution: per-tenant families account
// admissions, rejects, injected failures and — via the per-query ledger —
// wasted recovery seconds, attributable to exactly the tenant that paid
// them.
func TestPerTenantMetricsAndWastedAttribution(t *testing.T) {
	// MTBF far below query runtime: failures (and thus ledger waste) are
	// effectively certain.
	s := newTestServer(t, Config{InjectMTBF: 0.01, TenantRate: 1.0 / 3600, TenantBurst: 2})
	ctx := context.Background()

	var aliceWasted float64
	var aliceFailures int
	for i := 0; i < 2; i++ {
		resp, err := s.Submit(ctx, Request{Tenant: "alice", Query: TPCHQueries()[1].Text})
		if err != nil {
			t.Fatal(err)
		}
		aliceWasted += resp.WastedSeconds
		aliceFailures += resp.Failures
	}
	if aliceFailures == 0 {
		t.Fatal("no failures injected; attribution test is vacuous")
	}
	if aliceWasted <= 0 {
		t.Fatal("failures fired but ledger attributed no wasted seconds")
	}
	// Third query trips the quota.
	if _, err := s.Submit(ctx, Request{Tenant: "alice", Query: TPCHQueries()[0].Text}); err == nil {
		t.Fatal("expected quota reject")
	}

	st := s.Stats()
	if len(st.Tenants) != 1 || st.Tenants[0].Tenant != "alice" {
		t.Fatalf("tenants = %+v, want only alice", st.Tenants)
	}
	a := st.Tenants[0]
	if a.Admitted != 2 || a.Completed != 2 || a.Rejected != 1 {
		t.Fatalf("alice totals = %+v, want 2 admitted, 2 completed, 1 rejected", a)
	}
	if a.Failures != int64(aliceFailures) {
		t.Fatalf("metric failures = %d, responses said %d", a.Failures, aliceFailures)
	}
	// The tenant's wasted-seconds family equals the sum of her queries'
	// ledger totals: every lost second has exactly one owner.
	if math.Abs(a.WastedSeconds-aliceWasted) > 1e-9 {
		t.Fatalf("metric wasted = %g, responses summed to %g", a.WastedSeconds, aliceWasted)
	}

	// The families appear in Prometheus exposition with tenant labels.
	var b strings.Builder
	s.Registry().WritePrometheus(&b)
	text := b.String()
	for _, want := range []string{
		`ftserve_admitted_total{tenant="alice"} 2`,
		`ftserve_rejected_total{tenant="alice",reason="quota"} 1`,
		`ftserve_wasted_seconds_total{tenant="alice"}`,
		`ftserve_latency_seconds_count{tenant="alice"} 2`,
		"ftserve_queue_depth 0",
		"ftserve_pool_utilization 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestStatsMultiTenantOrdering(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()
	for _, tenant := range []string{"zeta", "alpha", "mid"} {
		if _, err := s.Submit(ctx, Request{Tenant: tenant, Query: "SELECT n_name FROM nation"}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if len(st.Tenants) != 3 {
		t.Fatalf("tenants = %d, want 3", len(st.Tenants))
	}
	for i, want := range []string{"alpha", "mid", "zeta"} {
		if st.Tenants[i].Tenant != want {
			t.Fatalf("tenants[%d] = %s, want %s (deterministic order)", i, st.Tenants[i].Tenant, want)
		}
	}
}

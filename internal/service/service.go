package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	goruntime "runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"ftpde/internal/cost"
	"ftpde/internal/engine"
	"ftpde/internal/failure"
	"ftpde/internal/obs"
	"ftpde/internal/obs/metrics"
	"ftpde/internal/obs/prof"
	"ftpde/internal/runtime"
	"ftpde/internal/schemes"
	"ftpde/internal/sql"
	"ftpde/internal/stats"
	"ftpde/internal/tpch"
)

// Config parameterizes a Server. The zero value of every field selects a
// sensible default (see withDefaults); tests construct partial configs.
type Config struct {
	// SF is the TPC-H scale factor of the served catalog.
	SF float64
	// Nodes is the partition count queries execute with.
	Nodes int
	// Seed seeds the data generator.
	Seed int64
	// BatchSize is the runtime vector width (default engine.DefaultBatchSize).
	BatchSize int

	// Workers sizes the shared worker pool (default GOMAXPROCS).
	Workers int
	// MaxConcurrent bounds queries executing simultaneously (default
	// 2*Workers): each admitted query owns one slot from admission through
	// response.
	MaxConcurrent int
	// QueueDepth bounds requests parked waiting for an execution slot;
	// beyond it the server sheds load with RejectQueueFull (default
	// 2*MaxConcurrent).
	QueueDepth int

	// TenantRate is each tenant's sustained queries/second budget
	// (token-bucket refill rate); <= 0 disables rate limiting.
	TenantRate float64
	// TenantBurst is the bucket capacity (default max(TenantRate, 1) when
	// rate limiting is on).
	TenantBurst float64
	// TenantConcurrency caps one tenant's in-flight queries so a single
	// tenant cannot occupy every execution slot; <= 0 disables the cap.
	TenantConcurrency int

	// ModelMTBF/ModelMTTR parameterize the fault-tolerance cost model used
	// at plan time (defaults: one hour, 1s — the paper's constants).
	ModelMTBF float64
	ModelMTTR float64
	// CPUPerRow/WritePerRow calibrate the planner's cost units (defaults
	// 1e-6 and 1.7e-5, ftsql's constants; PR-5 calibration can refine them).
	CPUPerRow   float64
	WritePerRow float64
	// DisableLoadAware turns off utilization-scaled recovery costing, so
	// plans price recovery as if the pool were idle regardless of load.
	DisableLoadAware bool

	// InjectMTBF > 0 runs every query under a shared Poisson failure
	// injector with that per-node MTBF (seconds of wall time).
	InjectMTBF float64
	// InjectSeed seeds the failure injector (default 1).
	InjectSeed int64
	// Injector overrides the Poisson injector built from InjectMTBF —
	// deterministic failure drills (engine.ScriptedFailures) use this.
	Injector engine.FailureInjector

	// Coarse switches every query to coarse whole-query restarts and
	// MaxRestarts bounds them (0 = the runtime default of 100). Together
	// with a scripted Injector these make recovery exhaustion — and the
	// forensics bundle it dumps — deterministic.
	Coarse      bool
	MaxRestarts int

	// ForensicsDir, when non-empty, enables failure forensics: a query that
	// exhausts recovery or dies mid-flight dumps a diagnostic bundle to a
	// bounded on-disk ring there. ForensicsMax bounds the ring (default 32).
	ForensicsDir string
	ForensicsMax int

	// DriftWindow/DriftThreshold/DriftK parameterize the online drift
	// detector (defaults: 64 samples, 0.5 relative error, 3 consecutive
	// queries). See obs.DriftConfig.
	DriftWindow    int
	DriftThreshold float64
	DriftK         int

	// ProfileDir / ProfileWindow enable the continuous profiler: every query
	// runs under pprof labels (query, tenant, stage, op, attempt), CPU windows
	// rotate into a crash-safe ring under ProfileDir (memory-only when empty),
	// and the label join feeds per-tenant CPU metrics, the drift detector's
	// tp_cpu term, and forensics bundles. Profiling is on when either field is
	// set; ProfileMax bounds the on-disk ring per profile kind.
	ProfileDir    string
	ProfileWindow time.Duration
	ProfileMax    int
	// ProfileDuty is the fraction (0,1] of each window the CPU profiler is
	// armed; attributed seconds are scaled by 1/duty so they stay unbiased.
	// 0 means always on — ftserve's flag default (0.1) is what keeps a
	// long-running server's profiling tax under the 2% budget.
	ProfileDuty float64

	// Registry receives the service metric families; nil allocates one.
	Registry *metrics.Registry
	// Tracer receives execution spans; nil allocates a small ring. Queries
	// execute against private tracers whose spans are folded in here tagged
	// with the query ID, so concurrent tenants' timelines stay separable.
	Tracer *obs.Tracer
}

func (cfg Config) withDefaults() Config {
	if cfg.SF <= 0 {
		cfg.SF = 0.01
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = goruntime.GOMAXPROCS(0)
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * cfg.Workers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.MaxConcurrent
	}
	if cfg.TenantRate > 0 && cfg.TenantBurst <= 0 {
		cfg.TenantBurst = cfg.TenantRate
		if cfg.TenantBurst < 1 {
			cfg.TenantBurst = 1
		}
	}
	if cfg.ModelMTBF <= 0 {
		cfg.ModelMTBF = failure.OneHour
	}
	if cfg.ModelMTTR <= 0 {
		cfg.ModelMTTR = 1
	}
	if cfg.CPUPerRow <= 0 {
		cfg.CPUPerRow = 1e-6
	}
	if cfg.WritePerRow <= 0 {
		cfg.WritePerRow = 1.7e-5
	}
	if cfg.InjectSeed == 0 {
		cfg.InjectSeed = 1
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.NewTracer(1 << 12)
	}
	return cfg
}

// Server is a multi-tenant query service: one TPC-H catalog, one shared
// bounded worker pool, many concurrent stage-DAG executions.
type Server struct {
	cfg      Config
	cat      *engine.Catalog
	cp       stats.CostParams
	base     cost.Model
	pool     *runtime.Pool
	injector engine.FailureInjector
	met      *svcMetrics

	progress  *obs.ProgressRegistry
	drift     *obs.DriftDetector
	forensics *obs.BundleWriter
	sampler   *prof.Sampler

	slots chan struct{} // execution-slot semaphore (MaxConcurrent)
	queue waitQueue
	stop  chan struct{} // closed when draining begins

	mu       sync.Mutex // guards draining + wg.Add
	draining bool
	wg       sync.WaitGroup

	tmu     sync.Mutex
	tenants map[string]*tenantState

	smu    sync.Mutex
	tstats map[string]sql.TableStats

	lmu     sync.Mutex
	ewmaLat float64 // seconds, exponentially-weighted mean query latency

	nmu   sync.Mutex
	lns   []net.Listener
	conns map[net.Conn]bool
	lwg   sync.WaitGroup // accept loops + connection handlers
	debug *obs.DebugServer
}

// New builds a server: generates the catalog, sizes the shared pool and
// registers the service metric families.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cat, err := tpch.Generate(cfg.SF, cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("service: generate catalog: %w", err)
	}
	s := &Server{
		cfg:  cfg,
		cat:  cat,
		cp:   stats.CostParams{CPUPerRow: cfg.CPUPerRow, WritePerRow: cfg.WritePerRow, Nodes: cfg.Nodes},
		base: cost.Model{MTBF: cfg.ModelMTBF, MTTR: cfg.ModelMTTR, Percentile: 0.95, PipeConst: 1, Nodes: cfg.Nodes},
		pool: runtime.NewPool(cfg.Workers),

		slots:   make(chan struct{}, cfg.MaxConcurrent),
		queue:   waitQueue{max: cfg.QueueDepth},
		stop:    make(chan struct{}),
		tenants: make(map[string]*tenantState),
		tstats:  make(map[string]sql.TableStats),
		conns:   make(map[net.Conn]bool),
	}
	switch {
	case cfg.Injector != nil:
		s.injector = cfg.Injector
	case cfg.InjectMTBF > 0:
		s.injector = engine.NewPoissonFailures(cfg.InjectMTBF, cfg.Nodes, cfg.InjectSeed)
	}
	s.progress = obs.NewProgressRegistry(32)
	s.drift = obs.NewDriftDetector(obs.DriftConfig{
		Nodes:     cfg.Nodes,
		ModelMTBF: cfg.ModelMTBF,
		ModelMTTR: cfg.ModelMTTR,
		Window:    cfg.DriftWindow,
		Threshold: cfg.DriftThreshold,
		K:         cfg.DriftK,
	})
	obs.RegisterDriftMetrics(cfg.Registry, s.drift)
	if cfg.ForensicsDir != "" {
		w, err := obs.NewBundleWriter(cfg.ForensicsDir, cfg.ForensicsMax)
		if err != nil {
			return nil, err
		}
		s.forensics = w
		obs.RegisterForensicsMetrics(cfg.Registry, w)
	}
	if cfg.ProfileDir != "" || cfg.ProfileWindow > 0 {
		sam, err := prof.New(prof.Config{
			Dir:      cfg.ProfileDir,
			Window:   cfg.ProfileWindow,
			MaxFiles: cfg.ProfileMax,
			Duty:     cfg.ProfileDuty,
		})
		if err != nil {
			return nil, fmt.Errorf("service: profiler: %w", err)
		}
		if err := sam.Start(); err != nil {
			return nil, fmt.Errorf("service: profiler: %w", err)
		}
		s.sampler = sam
		prof.RegisterSamplerMetrics(cfg.Registry, sam)
		registerTenantCPU(cfg.Registry, sam)
	}
	s.met = newSvcMetrics(cfg.Registry, s)
	return s, nil
}

// registerTenantCPU exposes the profiler's per-tenant CPU join as
// ftserve_cpu_seconds{tenant} — the service-level answer to "which tenant is
// burning the cluster's CPU", measured from sampled stacks rather than wall
// clock. Idempotent like the other Register helpers.
func registerTenantCPU(reg *metrics.Registry, sam *prof.Sampler) {
	_ = reg.RegisterFunc(metrics.Desc{
		Name: "ftserve_cpu_seconds", Kind: metrics.KindCounter, Unit: "seconds",
		Labels: []string{"tenant"},
		Help:   "On-CPU seconds attributed to each tenant by the continuous profiler's label join.",
	}, func() []metrics.Sample {
		if sam == nil {
			return nil
		}
		byTenant := sam.Attr().TenantCPUSeconds()
		tenants := make([]string, 0, len(byTenant))
		for t := range byTenant {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		out := make([]metrics.Sample, 0, len(tenants))
		for _, t := range tenants {
			out = append(out, metrics.Sample{LabelValues: []string{t}, Value: byTenant[t]})
		}
		return out
	})
}

// Progress exposes the live-query registry backing /debug/queries.
func (s *Server) Progress() *obs.ProgressRegistry { return s.progress }

// Drift exposes the online drift detector (tests and /debug/vars read it).
func (s *Server) Drift() *obs.DriftDetector { return s.drift }

// Pool exposes the shared worker pool (tests observe utilization).
func (s *Server) Pool() *runtime.Pool { return s.pool }

// Registry returns the metric registry backing /metrics.
func (s *Server) Registry() *metrics.Registry { return s.cfg.Registry }

// QueueDepth returns the number of requests parked for an execution slot.
func (s *Server) QueueDepth() int { return s.queue.Depth() }

// QueryError wraps a per-query failure that is not load shedding: Phase
// "plan" covers parse/plan errors (the client's query is at fault), "exec"
// covers runtime errors.
type QueryError struct {
	Phase string
	Err   error
}

func (e *QueryError) Error() string { return fmt.Sprintf("service: %s: %v", e.Phase, e.Err) }
func (e *QueryError) Unwrap() error { return e.Err }

// Submit runs one request through admission, planning and execution. Load
// shedding returns a *Reject error; query faults return a *QueryError. The
// returned Response is non-nil only on success.
func (s *Server) Submit(ctx context.Context, req Request) (*Response, error) {
	tenantName := req.Tenant
	if tenantName == "" {
		tenantName = "default"
	}

	// Draining check and in-flight registration are one atomic step so
	// Drain's wg.Wait cannot miss a query admitted concurrently.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		rej := &Reject{Code: RejectDraining, Tenant: tenantName, RetryAfter: s.retryHint()}
		s.met.rejected.With(tenantName, string(rej.Code)).Inc()
		return nil, rej
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()

	tn := s.tenant(tenantName)
	if rej := tn.admit(time.Now(), s.retryHint()); rej != nil {
		s.met.rejected.With(tenantName, string(rej.Code)).Inc()
		return nil, rej
	}
	defer tn.release()

	release, rej, err := s.admitGlobal(ctx, tenantName)
	if err != nil {
		return nil, err
	}
	if rej != nil {
		s.met.rejected.With(tenantName, string(rej.Code)).Inc()
		return nil, rej
	}
	defer release()
	s.met.admitted.With(tenantName).Inc()

	resp, err := s.execute(ctx, req, tenantName)
	if err != nil {
		s.met.failed.With(tenantName).Inc()
		return nil, err
	}
	s.met.completed.With(tenantName).Inc()
	s.met.latency.With(tenantName).Observe(resp.ElapsedSeconds)
	s.met.wasted.With(tenantName).Add(resp.WastedSeconds)
	s.met.failures.With(tenantName).Add(int64(resp.Failures))
	s.met.recovered.With(tenantName).Add(int64(resp.Recovered))
	s.observeLatency(resp.ElapsedSeconds)
	return resp, nil
}

// planModel samples pool utilization and returns the cost model queries are
// planned with: drift-corrected when the online detector has flagged a
// failure term, then load-aware unless disabled. The correction is the
// online analogue of re-planning after `ftsql -calibrate`: once the rolling
// MTBF/MTTR estimates disagree with the configured model for K consecutive
// queries, new MatConfigs price against observed reality.
func (s *Server) planModel() (cost.Model, float64) {
	util := s.pool.Utilization()
	m := s.drift.CorrectedModel(s.base)
	if !s.cfg.DisableLoadAware {
		m = m.UnderLoad(util)
	}
	return m, util
}

// stats returns (collecting and caching on first use) table statistics for
// every table the statement references.
func (s *Server) stats(stmt *sql.SelectStmt) (map[string]sql.TableStats, error) {
	s.smu.Lock()
	defer s.smu.Unlock()
	out := make(map[string]sql.TableStats, len(stmt.From))
	for _, tr := range stmt.From {
		ts, ok := s.tstats[tr.Table]
		if !ok {
			collected, err := sql.CollectStats(s.cat, []string{tr.Table})
			if err != nil {
				return nil, err
			}
			ts = collected[tr.Table]
			s.tstats[tr.Table] = ts
		}
		out[tr.Table] = ts
	}
	return out, nil
}

// execute plans and runs one admitted query on the shared pool. A fresh
// per-query metric set keeps the wasted-work ledger attributable to this
// query's tenant (a shared ledger would interleave failure/recovery pairs
// from concurrently recovering queries), and a fresh per-query tracer keeps
// the span slice attributable to this query — its spans are folded into the
// shared tracer tagged with the query ID, feed the drift detector on
// success, and freeze into a forensics bundle on death.
func (s *Server) execute(ctx context.Context, req Request, tenant string) (*Response, error) {
	start := time.Now()
	m, util := s.planModel()
	cp := s.drift.CorrectedParams(s.cp)

	stmt, err := sql.Parse(req.Query)
	if err != nil {
		return nil, &QueryError{Phase: "plan", Err: err}
	}
	tstats, err := s.stats(stmt)
	if err != nil {
		return nil, &QueryError{Phase: "plan", Err: err}
	}
	audit, err := sql.BuildAuditPlan(stmt, s.cat, tstats, cp, m)
	if err != nil {
		return nil, &QueryError{Phase: "plan", Err: err}
	}

	qt := obs.NewTracer(1 << 12)
	prog := s.progress.Begin(tenant, audit.Phys.Root.Name())
	prog.SetPrediction(audit.Pred.DominantRuntime, obs.StagePredictions(audit.Pred))

	exec := &runtime.Metrics{}
	queryLabel := strconv.FormatInt(prog.ID(), 10)
	rcfg := runtime.Config{
		Nodes:       s.cfg.Nodes,
		BatchSize:   s.cfg.BatchSize,
		Pool:        s.pool,
		Injector:    s.injector,
		Metrics:     exec,
		Tracer:      qt,
		Progress:    prog,
		MaxRestarts: s.cfg.MaxRestarts,
		ProfLabels:  prof.Labels{Query: queryLabel, Tenant: tenant},
	}
	if s.cfg.Coarse {
		rcfg.Recovery = schemes.CoarseRestart
	}
	rt, err := runtime.New(rcfg)
	if err != nil {
		s.progress.End(prog, err)
		return nil, &QueryError{Phase: "exec", Err: err}
	}
	res, report, err := rt.Execute(ctx, audit.Phys.Root)
	spans := qt.Snapshot()
	s.ingestSpans(prog.ID(), spans)
	if err != nil {
		s.progress.End(prog, err)
		s.dumpForensics(req, tenant, prog, audit, spans, exec, report, err)
		return nil, &QueryError{Phase: "exec", Err: err}
	}
	s.progress.End(prog, nil)
	s.drift.ObserveQuery(audit.Pred, spans)
	if s.sampler != nil {
		// Rotate the current CPU window (rate-limited) so this query's tail
		// is joined, then drain its per-operator CPU into the drift
		// detector's tp_cpu term — measured compute cost correcting tp(o).
		s.sampler.CutWindow()
		s.drift.ObserveCPU(audit.Pred, s.sampler.Attr().TakeQueryCPUSeconds(queryLabel))
	}

	rows, total := formatRows(res, req.MaxRows)
	cols := make([]string, len(audit.Phys.Output))
	for i, c := range audit.Phys.Output {
		cols[i] = c.Name
	}
	snap := exec.Snapshot()
	return &Response{
		ID:             req.ID,
		Code:           CodeOK,
		Columns:        cols,
		Rows:           rows,
		RowsTotal:      total,
		Failures:       report.Failures,
		Recovered:      report.RecomputedPartitions,
		Materialized:   report.MaterializedPartitions,
		WastedSeconds:  snap.WastedSeconds,
		ElapsedSeconds: time.Since(start).Seconds(),
		Utilization:    util,
		MatConfig:      audit.Opt.Config.String(),
	}, nil
}

// ingestSpans folds a finished query's private span slice into the shared
// tracer, tagged with the query ID so concurrent tenants stay separable on
// /debug/timeline.
func (s *Server) ingestSpans(qid int64, spans []obs.Span) {
	if len(spans) == 0 {
		return
	}
	tagged := make([]obs.Span, len(spans))
	for i, sp := range spans {
		sp.Query = int(qid)
		tagged[i] = sp
	}
	s.cfg.Tracer.Ingest(tagged)
}

// dumpForensics freezes a dead query into a diagnostic bundle on the
// forensics ring: the plan and its MatConfig, the audit of whatever spans
// landed before death, the wasted-work ledger, the per-query metrics
// snapshot and the server's drift state. Bundle-write failures must not mask
// the query error; they are surfaced as a failed-bundle counter instead.
func (s *Server) dumpForensics(req Request, tenant string, prog *obs.Progress,
	audit *sql.AuditPlan, spans []obs.Span, exec *runtime.Metrics,
	report *engine.Report, execErr error) {
	if s.forensics == nil {
		return
	}
	reason := "exec_error"
	switch {
	case report != nil && report.Aborted:
		reason = "recovery_exhausted"
	case execErr != nil && errorsIsContext(execErr):
		reason = "rejected"
	}
	psnap := prog.Snapshot()
	// Freeze the profiler's view of the death: cut the in-flight CPU window
	// and grab a heap snapshot so the bundle answers "what was burning CPU
	// when recovery gave up". Nil sampler yields a nil capture.
	profCap := prof.CaptureBundle(s.sampler)
	b := &obs.Bundle{
		ID:        prog.ID(),
		Tenant:    tenant,
		Query:     req.Query,
		Reason:    reason,
		Error:     execErr.Error(),
		MatConfig: audit.Opt.Config.String(),
		Pred:      audit.Pred,
		Audit:     obs.BuildAudit(audit.Pred, spans, 0),
		Spans:     spans,
		Progress:  &psnap,
		Ledger:    exec.Ledger().Snapshot(),
		Registry:  exec.Registry().Snapshot(),
		Drift:     s.drift.Snapshot(),
		Prof:      profCap,
		CreatedAt: time.Now(),
	}
	if _, err := s.forensics.Write(b); err != nil {
		s.met.bundleErrors.Add(1)
	}
}

// errorsIsContext reports whether the error chain ends in a context
// cancellation or deadline — a query killed mid-flight rather than by
// exhausted recovery.
func errorsIsContext(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// formatRows renders result rows as strings, truncated to max (0 = all).
func formatRows(res *engine.PartitionedResult, max int) ([][]string, int) {
	all := res.AllRows()
	total := len(all)
	if max > 0 && len(all) > max {
		all = all[:max]
	}
	out := make([][]string, len(all))
	for i, r := range all {
		row := make([]string, len(r))
		for j, v := range r {
			row[j] = fmt.Sprintf("%v", v)
		}
		out[i] = row
	}
	return out, total
}

// observeLatency folds one query latency into the EWMA behind retryHint.
func (s *Server) observeLatency(sec float64) {
	s.lmu.Lock()
	if s.ewmaLat == 0 {
		s.ewmaLat = sec
	} else {
		s.ewmaLat = 0.8*s.ewmaLat + 0.2*sec
	}
	s.lmu.Unlock()
}

// retryHint estimates how long a shed request should back off: roughly the
// time for one queued-behind query to finish, floored at 100ms so clients
// do not spin.
func (s *Server) retryHint() time.Duration {
	s.lmu.Lock()
	lat := s.ewmaLat
	s.lmu.Unlock()
	if lat == 0 {
		lat = 0.25
	}
	hint := time.Duration(lat * float64(time.Second) * float64(1+s.queue.Depth()))
	if hint < 100*time.Millisecond {
		hint = 100 * time.Millisecond
	}
	if hint > 30*time.Second {
		hint = 30 * time.Second
	}
	return hint
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the query path down: new submissions are rejected
// with RejectDraining, queued-but-unadmitted requests are shed, in-flight
// queries run to completion (including any failure recovery), then the
// shared pool is closed. Idempotent; concurrent callers all block until the
// drain completes.
func (s *Server) Drain() {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	s.mu.Unlock()
	if first {
		close(s.stop)
	}
	s.wg.Wait()
	s.pool.Close()
	if s.sampler != nil {
		// Stop after the last query: Stop rotates the final window, so
		// tenant/operator CPU totals include work that raced with the drain.
		s.sampler.Stop()
	}
}

// Close drains the server and tears down its listeners and connections.
func (s *Server) Close() error {
	s.nmu.Lock()
	lns := s.lns
	s.lns = nil
	debug := s.debug
	s.debug = nil
	s.nmu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	s.Drain()
	s.nmu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.nmu.Unlock()
	if debug != nil {
		debug.Close()
	}
	s.lwg.Wait()
	return nil
}

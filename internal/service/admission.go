package service

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// RejectCode classifies a load-shed decision.
type RejectCode string

const (
	// RejectQueueFull: the global admission queue is at capacity.
	RejectQueueFull RejectCode = "queue_full"
	// RejectTenantBusy: the tenant is at its concurrency cap.
	RejectTenantBusy RejectCode = "tenant_busy"
	// RejectQuota: the tenant's token bucket is empty.
	RejectQuota RejectCode = "quota"
	// RejectDraining: the server is shutting down.
	RejectDraining RejectCode = "draining"
)

// Reject is the typed load-shedding error. It carries a Retry-After hint so
// closed-loop clients can back off instead of hammering a hot server.
type Reject struct {
	Code       RejectCode
	Tenant     string
	RetryAfter time.Duration
}

func (r *Reject) Error() string {
	return fmt.Sprintf("service: rejected (%s, tenant %q): retry after %s", r.Code, r.Tenant, r.RetryAfter)
}

// AsReject unwraps err to a *Reject if it is one.
func AsReject(err error) (*Reject, bool) {
	r, ok := err.(*Reject)
	return r, ok
}

// tokenBucket is a standard rate/burst bucket; rate <= 0 disables it.
// Callers hold the owning tenant's lock.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// take refills by elapsed wall time and consumes one token. On refusal it
// returns how long until a token accrues (the Retry-After hint).
func (b *tokenBucket) take(now time.Time) (bool, time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
	} else {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	return false, wait
}

// tenantState tracks one tenant's quota bucket and in-flight count.
type tenantState struct {
	name string

	mu       sync.Mutex
	bucket   tokenBucket
	inflight int
	cap      int // max concurrent queries; <= 0 means unlimited
}

// admit claims one slot, checking the concurrency cap before spending a
// token so a capped-out request does not also drain the bucket. busyHint is
// the Retry-After estimate for cap rejections (roughly one query latency).
func (t *tenantState) admit(now time.Time, busyHint time.Duration) *Reject {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cap > 0 && t.inflight >= t.cap {
		return &Reject{Code: RejectTenantBusy, Tenant: t.name, RetryAfter: busyHint}
	}
	if ok, wait := t.bucket.take(now); !ok {
		return &Reject{Code: RejectQuota, Tenant: t.name, RetryAfter: wait}
	}
	t.inflight++
	return nil
}

// release returns the slot claimed by admit.
func (t *tenantState) release() {
	t.mu.Lock()
	t.inflight--
	t.mu.Unlock()
}

// tenant returns (creating on first use) the state for a tenant name.
func (s *Server) tenant(name string) *tenantState {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		t = &tenantState{
			name: name,
			bucket: tokenBucket{
				rate:  s.cfg.TenantRate,
				burst: s.cfg.TenantBurst,
			},
			cap: s.cfg.TenantConcurrency,
		}
		s.tenants[name] = t
	}
	return t
}

// admitGlobal claims one of MaxConcurrent execution slots. The fast path is
// a non-blocking acquire; on contention the request parks in a bounded
// waiter queue (at most QueueDepth waiters) and a full queue sheds load
// immediately rather than building unbounded backlog. Returns a release
// func on success.
func (s *Server) admitGlobal(ctx context.Context, tenant string) (func(), *Reject, error) {
	select {
	case s.slots <- struct{}{}:
		return s.releaseSlot, nil, nil
	default:
	}
	// Slow path: park in the bounded queue.
	if !s.queue.tryEnter() {
		return nil, &Reject{Code: RejectQueueFull, Tenant: tenant, RetryAfter: s.retryHint()}, nil
	}
	defer s.queue.leave()
	select {
	case s.slots <- struct{}{}:
		return s.releaseSlot, nil, nil
	case <-s.stop:
		return nil, &Reject{Code: RejectDraining, Tenant: tenant, RetryAfter: s.retryHint()}, nil
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
}

func (s *Server) releaseSlot() { <-s.slots }

// waitQueue counts parked admission waiters against a bound.
type waitQueue struct {
	mu    sync.Mutex
	depth int
	max   int
}

func (q *waitQueue) tryEnter() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.depth >= q.max {
		return false
	}
	q.depth++
	return true
}

func (q *waitQueue) leave() {
	q.mu.Lock()
	q.depth--
	q.mu.Unlock()
}

// Depth returns the current number of parked waiters.
func (q *waitQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

package service

import (
	"ftpde/internal/obs/metrics"
)

// svcMetrics is the per-tenant labeled metric set of the query service,
// registered into the obs/metrics registry and served at /metrics.
type svcMetrics struct {
	admitted  *metrics.CounterVec   // ftserve_admitted_total{tenant}
	rejected  *metrics.CounterVec   // ftserve_rejected_total{tenant,reason}
	completed *metrics.CounterVec   // ftserve_completed_total{tenant}
	failed    *metrics.CounterVec   // ftserve_failed_total{tenant}
	failures  *metrics.CounterVec   // ftserve_injected_failures_total{tenant}
	recovered *metrics.CounterVec   // ftserve_recovered_partitions_total{tenant}
	latency   *metrics.HistogramVec // ftserve_latency_seconds{tenant}
	wasted    *metrics.GaugeVec     // ftserve_wasted_seconds_total{tenant}

	bundleErrors *metrics.Counter // ftserve_forensics_errors_total
}

// newSvcMetrics registers the service families. Queue depth, in-flight count
// and pool utilization are func-gauges sampling live server state, so a
// scrape always sees the current value without a write on the query path.
func newSvcMetrics(reg *metrics.Registry, s *Server) *svcMetrics {
	m := &svcMetrics{
		admitted: reg.NewCounterVec("ftserve_admitted_total",
			"Queries admitted past global and tenant admission control.", []string{"tenant"}),
		rejected: reg.NewCounterVec("ftserve_rejected_total",
			"Queries shed by admission control, by reject reason.", []string{"tenant", "reason"}),
		completed: reg.NewCounterVec("ftserve_completed_total",
			"Queries that returned a result.", []string{"tenant"}),
		failed: reg.NewCounterVec("ftserve_failed_total",
			"Admitted queries that failed in planning or execution.", []string{"tenant"}),
		failures: reg.NewCounterVec("ftserve_injected_failures_total",
			"Injected node failures absorbed while executing a tenant's queries.", []string{"tenant"}),
		recovered: reg.NewCounterVec("ftserve_recovered_partitions_total",
			"Partitions recomputed by fine-grained recovery for a tenant.", []string{"tenant"}),
		latency: reg.NewHistogramVec("ftserve_latency_seconds",
			"End-to-end latency of completed queries.", "seconds",
			[]string{"tenant"}, metrics.DefaultLatencyBuckets()),
		wasted: metrics.NewGaugeVec([]string{"tenant"}),
		bundleErrors: reg.NewCounter("ftserve_forensics_errors_total",
			"Forensics bundles that failed to persist (the query error itself is never masked)."),
	}
	// Wasted seconds accumulate fractional values, which Counter (int64)
	// cannot hold; a monotone GaugeVec exposed with counter semantics keeps
	// the Prometheus type honest.
	reg.MustRegisterFunc(metrics.Desc{
		Name: "ftserve_wasted_seconds_total", Kind: metrics.KindCounter, Unit: "seconds",
		Help:   "Ledger-attributed recovery seconds wasted on a tenant's queries.",
		Labels: []string{"tenant"},
	}, m.wasted.Samples)
	reg.MustRegisterFunc(metrics.Desc{
		Name: "ftserve_queue_depth", Kind: metrics.KindGauge,
		Help: "Requests parked waiting for an execution slot.",
	}, func() []metrics.Sample {
		return []metrics.Sample{{Value: float64(s.queue.Depth())}}
	})
	reg.MustRegisterFunc(metrics.Desc{
		Name: "ftserve_inflight", Kind: metrics.KindGauge,
		Help: "Queries currently holding an execution slot.",
	}, func() []metrics.Sample {
		return []metrics.Sample{{Value: float64(len(s.slots))}}
	})
	reg.MustRegisterFunc(metrics.Desc{
		Name: "ftserve_pool_utilization", Kind: metrics.KindGauge,
		Help: "Shared worker pool utilization: (busy + waiting) / capacity.",
	}, func() []metrics.Sample {
		return []metrics.Sample{{Value: s.pool.Utilization()}}
	})
	return m
}

// TenantTotals is one tenant's aggregate accounting, for Stats and ftload.
type TenantTotals struct {
	Tenant        string  `json:"tenant"`
	Admitted      int64   `json:"admitted"`
	Rejected      int64   `json:"rejected"`
	Completed     int64   `json:"completed"`
	Failed        int64   `json:"failed"`
	Failures      int64   `json:"failures"`
	Recovered     int64   `json:"recovered"`
	WastedSeconds float64 `json:"wasted_seconds"`
}

// Stats is a live snapshot of server state.
type Stats struct {
	Draining    bool           `json:"draining"`
	QueueDepth  int            `json:"queue_depth"`
	InFlight    int            `json:"in_flight"`
	Utilization float64        `json:"utilization"`
	Tenants     []TenantTotals `json:"tenants,omitempty"`
}

// Stats returns the live server snapshot served under /debug/vars.
func (s *Server) Stats() Stats {
	st := Stats{
		Draining:    s.Draining(),
		QueueDepth:  s.queue.Depth(),
		InFlight:    len(s.slots),
		Utilization: s.pool.Utilization(),
	}
	totals := map[string]*TenantTotals{}
	get := func(tenant string) *TenantTotals {
		t, ok := totals[tenant]
		if !ok {
			t = &TenantTotals{Tenant: tenant}
			totals[tenant] = t
		}
		return t
	}
	for _, smp := range s.met.admitted.Samples() {
		get(smp.LabelValues[0]).Admitted = int64(smp.Value)
	}
	for _, smp := range s.met.rejected.Samples() {
		get(smp.LabelValues[0]).Rejected += int64(smp.Value)
	}
	for _, smp := range s.met.completed.Samples() {
		get(smp.LabelValues[0]).Completed = int64(smp.Value)
	}
	for _, smp := range s.met.failed.Samples() {
		get(smp.LabelValues[0]).Failed = int64(smp.Value)
	}
	for _, smp := range s.met.failures.Samples() {
		get(smp.LabelValues[0]).Failures = int64(smp.Value)
	}
	for _, smp := range s.met.recovered.Samples() {
		get(smp.LabelValues[0]).Recovered = int64(smp.Value)
	}
	for _, smp := range s.met.wasted.Samples() {
		get(smp.LabelValues[0]).WastedSeconds = smp.Value
	}
	for _, t := range totals {
		st.Tenants = append(st.Tenants, *t)
	}
	sortTenants(st.Tenants)
	return st
}

// sortTenants orders totals by tenant name for deterministic output.
func sortTenants(ts []TenantTotals) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Tenant < ts[j-1].Tenant; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

package service

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ftpde/internal/engine"
	"ftpde/internal/obs"
)

// TestServiceProfilingAttributesTenants runs a profiled multi-tenant workload
// and pins the service-level surface: the profiler metric families exist on
// the shared registry (including ftserve_cpu_seconds), windows rotate, and a
// query that dies after the warm-up leaves a forensics bundle carrying the
// profiler's capture — the "top-CPU operators at death" answer.
func TestServiceProfilingAttributesTenants(t *testing.T) {
	profDir := t.TempDir()
	forDir := t.TempDir()
	inj := engine.NewScriptedFailures()
	inj.Add("aggregate", 2, 0)
	inj.Add("aggregate", 2, 1)
	s := newTestServer(t, Config{
		Injector: inj, Coarse: true, MaxRestarts: 1,
		ForensicsDir: forDir, ForensicsMax: 4,
		ProfileDir: profDir, ProfileWindow: 100 * time.Millisecond, ProfileMax: 32,
	})

	// Warm-up: successful queries from two tenants. The scripted failures
	// target the aggregate operator only, so these scans never trip them.
	const scanQuery = "SELECT l_returnflag, l_linestatus FROM lineitem"
	for i := 0; i < 3; i++ {
		for _, tenant := range []string{"tenant-a", "tenant-b"} {
			if _, err := s.Submit(context.Background(), Request{Tenant: tenant, Query: scanQuery}); err != nil {
				t.Fatalf("%s warm-up %d: %v", tenant, i, err)
			}
		}
	}

	// The aggregate query trips the scripted failures and exhausts recovery.
	if _, err := s.Submit(context.Background(), Request{Tenant: "victim", Query: aggQuery}); err == nil {
		t.Fatal("expected recovery exhaustion")
	}

	snap := s.Registry().Snapshot()
	for _, fam := range []string{
		"ftserve_cpu_seconds",
		"ftpde_op_cpu_seconds",
		"ftpde_op_alloc_bytes",
		"ftpde_prof_windows_total",
		"ftpde_prof_join_frac",
	} {
		if snap.Family(fam) == nil {
			t.Errorf("registry missing profiler family %q", fam)
		}
	}

	// The drift detector carries the tp_cpu term (flagging depends on how
	// many CPU samples landed, which this test cannot force on a quiet
	// machine — presence and plumbing are the contract here).
	var sawTP bool
	for _, term := range s.Drift().Snapshot().Terms {
		if term.Term == obs.DriftTPCPU {
			sawTP = true
		}
	}
	if !sawTP {
		t.Error("drift snapshot missing tp_cpu term")
	}

	entries, err := os.ReadDir(forDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no forensics bundle written: %v %v", entries, err)
	}
	b, err := obs.ReadBundle(filepath.Join(forDir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Prof == nil {
		t.Fatal("bundle carries no profiler capture")
	}
	if b.Prof.Windows < 1 {
		t.Errorf("capture windows = %d, want >= 1", b.Prof.Windows)
	}
	if !strings.Contains(b.String(), "profiler at death") {
		t.Errorf("replay output missing profiler section:\n%s", b.String())
	}

	// Drain stops the sampler and rotates the final window into the ring.
	s.Drain()
	names, err := filepath.Glob(filepath.Join(profDir, "cpu-*.pb.gz"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no CPU windows on the profile ring: %v %v", names, err)
	}
}

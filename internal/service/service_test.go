package service

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"ftpde/internal/sql"
)

// Test data shape shared with the runtime equivalence tests.
const (
	eqSF    = 0.002
	eqNodes = 4
	eqSeed  = 7
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.SF == 0 {
		cfg.SF = eqSF
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = eqNodes
	}
	if cfg.Seed == 0 {
		cfg.Seed = eqSeed
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestProtoRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{ID: "r1", Tenant: "alice", Query: "SELECT n_name FROM nation", MaxRows: 3}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", out, in)
	}
	// A frame claiming an absurd length is rejected before allocation.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if err := ReadFrame(&buf, &out); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestSubmitSimpleQuery(t *testing.T) {
	s := newTestServer(t, Config{})
	resp, err := s.Submit(context.Background(), Request{Query: "SELECT n_name FROM nation", MaxRows: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeOK {
		t.Fatalf("code = %s, want ok", resp.Code)
	}
	if len(resp.Rows) != 5 || resp.RowsTotal != 25 {
		t.Fatalf("rows = %d (total %d), want 5 of 25", len(resp.Rows), resp.RowsTotal)
	}
	if len(resp.Columns) != 1 || resp.Columns[0] != "n_name" {
		t.Fatalf("columns = %v", resp.Columns)
	}
}

func TestSubmitBadQuery(t *testing.T) {
	s := newTestServer(t, Config{})
	_, err := s.Submit(context.Background(), Request{Query: "SELEC nonsense"})
	qe := (*QueryError)(nil)
	if !errors.As(err, &qe) || qe.Phase != "plan" {
		t.Fatalf("bad query error = %v, want plan-phase QueryError", err)
	}
}

// TestQueueFullTypedReject pins the load-shedding contract: when every
// execution slot is held and the waiter queue is at capacity, Submit sheds
// immediately with a typed queue_full reject carrying a Retry-After hint.
func TestQueueFullTypedReject(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})
	ctx := context.Background()

	// Deterministically occupy the single execution slot.
	release, rej, err := s.admitGlobal(ctx, "holder")
	if err != nil || rej != nil {
		t.Fatalf("holder admission failed: %v %v", err, rej)
	}

	// Park one request in the (depth-1) waiter queue.
	parked := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, Request{Tenant: "queued", Query: "SELECT n_name FROM nation"})
		parked <- err
	}()
	for i := 0; s.QueueDepth() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.QueueDepth() != 1 {
		t.Fatal("request did not park in the waiter queue")
	}

	// The queue is full: the next submission is shed, typed and hinted.
	_, err = s.Submit(ctx, Request{Tenant: "shed", Query: "SELECT n_name FROM nation"})
	rej2, ok := AsReject(err)
	if !ok || rej2.Code != RejectQueueFull {
		t.Fatalf("err = %v, want queue_full Reject", err)
	}
	if rej2.RetryAfter <= 0 {
		t.Fatalf("queue_full RetryAfter = %v, want > 0", rej2.RetryAfter)
	}
	if rej2.Tenant != "shed" {
		t.Fatalf("reject tenant = %q", rej2.Tenant)
	}

	// Releasing the slot lets the parked request run to completion.
	release()
	if err := <-parked; err != nil {
		t.Fatalf("parked request failed after release: %v", err)
	}
}

// TestTenantQuotaReject: a tenant with an exhausted token bucket is shed
// with a quota reject whose Retry-After reflects the refill rate, while
// other tenants are unaffected.
func TestTenantQuotaReject(t *testing.T) {
	s := newTestServer(t, Config{TenantRate: 1.0 / 3600, TenantBurst: 1})
	ctx := context.Background()
	if _, err := s.Submit(ctx, Request{Tenant: "alice", Query: "SELECT n_name FROM nation"}); err != nil {
		t.Fatalf("first query within burst failed: %v", err)
	}
	_, err := s.Submit(ctx, Request{Tenant: "alice", Query: "SELECT n_name FROM nation"})
	rej, ok := AsReject(err)
	if !ok || rej.Code != RejectQuota {
		t.Fatalf("err = %v, want quota Reject", err)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("quota RetryAfter = %v, want > 0", rej.RetryAfter)
	}
	// Bob has his own bucket.
	if _, err := s.Submit(ctx, Request{Tenant: "bob", Query: "SELECT n_name FROM nation"}); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
}

// TestTenantCapCannotStarveOthers is the deterministic scheduling test: a
// tenant pinned at its concurrency cap is shed with tenant_busy and does not
// consume global slots, so another tenant still executes.
func TestTenantCapCannotStarveOthers(t *testing.T) {
	s := newTestServer(t, Config{TenantConcurrency: 2, MaxConcurrent: 8})
	ctx := context.Background()

	// Pin alice at her cap via the admission bookkeeping (no execution, no
	// races: this is pure accounting).
	alice := s.tenant("alice")
	for i := 0; i < 2; i++ {
		if rej := alice.admit(time.Now(), time.Second); rej != nil {
			t.Fatalf("admit %d: %v", i, rej)
		}
	}
	_, err := s.Submit(ctx, Request{Tenant: "alice", Query: "SELECT n_name FROM nation"})
	rej, ok := AsReject(err)
	if !ok || rej.Code != RejectTenantBusy {
		t.Fatalf("capped tenant err = %v, want tenant_busy Reject", err)
	}
	// The cap reject consumed no global slot and no quota token.
	if got := len(s.slots); got != 0 {
		t.Fatalf("global slots held after tenant-cap reject: %d", got)
	}
	// Bob runs while alice is pinned.
	if _, err := s.Submit(ctx, Request{Tenant: "bob", Query: "SELECT n_name FROM nation"}); err != nil {
		t.Fatalf("bob starved by alice's cap: %v", err)
	}
	alice.release()
	alice.release()
	if _, err := s.Submit(ctx, Request{Tenant: "alice", Query: "SELECT n_name FROM nation"}); err != nil {
		t.Fatalf("alice rejected after releasing cap: %v", err)
	}
}

// TestDrainGraceful: draining lets the in-flight query finish (it is parked
// on the shared pool mid-execution when the drain begins), sheds new
// submissions with a typed draining reject, and closes the pool.
func TestDrainGraceful(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	// Hold the single pool worker so the submitted query is pinned
	// in-flight (inside execute, waiting for the pool) when Drain begins.
	if err := s.pool.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	inflight := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, Request{Tenant: "alice", Query: "SELECT n_name FROM nation"})
		inflight <- err
	}()
	for i := 0; s.pool.Waiting() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.pool.Waiting() == 0 {
		t.Fatal("query never reached the pool")
	}

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	for i := 0; !s.Draining() && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	// New work is shed while draining.
	_, err := s.Submit(ctx, Request{Tenant: "late", Query: "SELECT n_name FROM nation"})
	rej, ok := AsReject(err)
	if !ok || rej.Code != RejectDraining {
		t.Fatalf("submit during drain = %v, want draining Reject", err)
	}

	// The drain must be blocked on the in-flight query.
	select {
	case <-drained:
		t.Fatal("Drain returned with a query still in flight")
	case <-time.After(20 * time.Millisecond):
	}

	// Release the worker: the in-flight query completes, then the drain.
	s.pool.Release()
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight query failed during drain: %v", err)
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not complete")
	}
	if !s.pool.Closed() {
		t.Fatal("pool not closed after drain")
	}
}

// serialBaseline runs each workload query alone on a fresh server and
// returns its formatted rows keyed by query name.
func serialBaseline(t *testing.T, cfg Config) map[string]*Response {
	t.Helper()
	s := newTestServer(t, cfg)
	out := map[string]*Response{}
	for _, q := range TPCHQueries() {
		resp, err := s.Submit(context.Background(), Request{Tenant: "serial", Query: q.Text})
		if err != nil {
			t.Fatalf("serial %s: %v", q.Name, err)
		}
		out[q.Name] = resp
	}
	return out
}

// runConcurrent submits rounds copies of every workload query concurrently
// over TCP and checks byte-identical rows against the serial baseline.
// Returns the total injected failures observed.
func runConcurrent(t *testing.T, cfg Config, want map[string]*Response, rounds int) int {
	t.Helper()
	s := newTestServer(t, cfg)
	addr, err := s.StartTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	queries := TPCHQueries()
	var wg sync.WaitGroup
	var mu sync.Mutex
	failures := 0
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			wg.Add(1)
			go func(r int, q TPCHQuery) {
				defer wg.Done()
				c, err := Dial(addr)
				if err != nil {
					t.Errorf("%s/%d: dial: %v", q.Name, r, err)
					return
				}
				defer c.Close()
				resp, err := c.Do(Request{Tenant: q.Name, Query: q.Text})
				if err != nil {
					t.Errorf("%s/%d: %v", q.Name, r, err)
					return
				}
				if resp.Code != CodeOK {
					t.Errorf("%s/%d: code %s: %s", q.Name, r, resp.Code, resp.Error)
					return
				}
				if !reflect.DeepEqual(resp.Rows, want[q.Name].Rows) ||
					!reflect.DeepEqual(resp.Columns, want[q.Name].Columns) {
					t.Errorf("%s/%d: concurrent rows differ from serial baseline", q.Name, r)
				}
				mu.Lock()
				failures += resp.Failures
				mu.Unlock()
			}(r, q)
		}
	}
	wg.Wait()
	return failures
}

// TestConcurrentEquivalenceClean: >= 9 concurrent TPC-H Q1/Q3/Q5 executions
// multiplexed on one small shared pool return byte-identical results to
// serial runs.
func TestConcurrentEquivalenceClean(t *testing.T) {
	want := serialBaseline(t, Config{})
	if n := runConcurrent(t, Config{Workers: 3}, want, 3); n != 0 {
		t.Fatalf("clean run reported %d injected failures", n)
	}
}

// TestConcurrentEquivalenceUnderFailures: same bar with Poisson failure
// injection hot enough that recoveries overlap across queries.
func TestConcurrentEquivalenceUnderFailures(t *testing.T) {
	want := serialBaseline(t, Config{})
	n := runConcurrent(t, Config{Workers: 3, InjectMTBF: 0.02}, want, 3)
	if n == 0 {
		t.Fatal("failure arm injected no failures; lower InjectMTBF")
	}
	t.Logf("recovered from %d injected failures with identical results", n)
}

// TestLoadAwareFlip pins the acceptance criterion: the same query planned
// through the same server picks a different (more materialized)
// configuration when the shared pool is saturated than when it is idle.
func TestLoadAwareFlip(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:     2,
		ModelMTBF:   0.3,
		ModelMTTR:   0.05,
		WritePerRow: 3e-6,
	})
	q5 := TPCHQueries()[2]
	plan := func() (string, int) {
		m, _ := s.planModel()
		stmt, err := sql.Parse(q5.Text)
		if err != nil {
			t.Fatal(err)
		}
		tstats, err := s.stats(stmt)
		if err != nil {
			t.Fatal(err)
		}
		audit, err := sql.BuildAuditPlan(stmt, s.cat, tstats, s.cp, m)
		if err != nil {
			t.Fatal(err)
		}
		return audit.Opt.Config.String(), len(audit.Opt.Config.Materialized())
	}

	idleCfg, idleMats := plan()

	// Saturate the pool: hold both workers, so utilization >= 1 and the
	// recovery stretch hits its clamp.
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := s.pool.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		s.pool.Release()
		s.pool.Release()
	}()
	hotCfg, hotMats := plan()

	if idleCfg == hotCfg {
		t.Fatalf("materialization did not flip under load: idle=%s hot=%s", idleCfg, hotCfg)
	}
	if hotMats <= idleMats {
		t.Fatalf("saturated pool picked fewer materializations: idle=%s (%d) hot=%s (%d)",
			idleCfg, idleMats, hotCfg, hotMats)
	}
	t.Logf("idle config %s (%d mats) -> saturated config %s (%d mats)", idleCfg, idleMats, hotCfg, hotMats)
}

// TestLoadAwareDisabled: with DisableLoadAware the same saturation changes
// nothing.
func TestLoadAwareDisabled(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, DisableLoadAware: true})
	m, _ := s.planModel()
	if m.RecoveryStretch != 0 {
		t.Fatalf("idle stretch = %g, want 0", m.RecoveryStretch)
	}
	if err := s.pool.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.pool.Release()
	m, util := s.planModel()
	if util == 0 {
		t.Fatal("utilization not observed")
	}
	if m.RecoveryStretch != 0 {
		t.Fatalf("stretch with load-aware disabled = %g, want 0", m.RecoveryStretch)
	}
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"

	"ftpde/internal/obs"
)

// StartTCP binds addr (":0" picks a free port) and serves the framed
// protocol in the background. Returns the bound address.
func (s *Server) StartTCP(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("service: listen: %w", err)
	}
	s.nmu.Lock()
	s.lns = append(s.lns, ln)
	s.nmu.Unlock()
	s.lwg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.lwg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (Close)
		}
		s.nmu.Lock()
		s.conns[conn] = true
		s.nmu.Unlock()
		s.lwg.Add(1)
		go s.handleConn(conn)
	}
}

// handleConn serves one synchronous request/response stream.
func (s *Server) handleConn(conn net.Conn) {
	defer s.lwg.Done()
	defer func() {
		conn.Close()
		s.nmu.Lock()
		delete(s.conns, conn)
		s.nmu.Unlock()
	}()
	for {
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			return // EOF, reset, or corrupt frame: drop the connection
		}
		resp := s.handle(context.Background(), req)
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// handle maps Submit's typed errors onto a Response, shared by the TCP and
// HTTP front doors.
func (s *Server) handle(ctx context.Context, req Request) *Response {
	resp, err := s.Submit(ctx, req)
	if err == nil {
		return resp
	}
	out := &Response{ID: req.ID, Code: CodeError, Error: err.Error()}
	if rej, ok := AsReject(err); ok {
		out.Code = string(rej.Code)
		out.RetryAfterSeconds = rej.RetryAfter.Seconds()
	} else if qe := (*QueryError)(nil); errors.As(err, &qe) && qe.Phase == "plan" {
		out.Code = CodeBadQuery
	}
	return out
}

// HTTPMux returns the HTTP front door: the full obs debug vocabulary
// (/metrics, /debug/vars, /debug/queries, /debug/timeline, /debug/trace,
// /debug/pprof/*) plus POST /query and GET /healthz.
func (s *Server) HTTPMux() *http.ServeMux {
	mux := obs.DebugMux(s.cfg.Tracer, func() any { return s.Stats() }, s.cfg.Registry, s.progress)
	mux.HandleFunc("/query", s.handleHTTPQuery)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// StartHTTP binds addr and serves HTTPMux in the background.
func (s *Server) StartHTTP(addr string) (string, error) {
	srv, err := obs.StartMux(addr, s.HTTPMux())
	if err != nil {
		return "", err
	}
	s.nmu.Lock()
	s.debug = srv
	s.nmu.Unlock()
	return srv.Addr(), nil
}

// handleHTTPQuery accepts a JSON Request body and replies with a JSON
// Response. Load-shed rejects map to 429 (503 when draining) and carry a
// Retry-After header; bad queries map to 400, execution faults to 500.
func (s *Server) handleHTTPQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON Request", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxFrameBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := s.handle(r.Context(), req)
	w.Header().Set("Content-Type", "application/json")
	switch resp.Code {
	case CodeOK:
		// 200
	case CodeBadQuery:
		w.WriteHeader(http.StatusBadRequest)
	case CodeError:
		w.WriteHeader(http.StatusInternalServerError)
	default:
		// Typed load-shed rejects: surface the backoff hint as a standard
		// Retry-After header (whole seconds, rounded up).
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(math.Ceil(resp.RetryAfterSeconds))))
		if resp.Code == string(RejectDraining) {
			w.WriteHeader(http.StatusServiceUnavailable)
		} else {
			w.WriteHeader(http.StatusTooManyRequests)
		}
	}
	enc := json.NewEncoder(w)
	enc.Encode(resp)
}

// Package service implements ftserve: a long-lived multi-tenant query
// service on top of the sql -> core -> cost planning pipeline and the
// pipelined runtime. Many queries execute concurrently on one shared bounded
// worker pool (runtime.Pool); admission control sheds load with typed
// rejects, per-tenant token buckets and concurrency caps keep tenants from
// starving each other, and the fault-tolerance optimizer prices recovery
// against observed pool utilization (cost.Model.UnderLoad) so materialization
// decisions are traffic-aware.
//
// The wire protocol is deliberately small: a 4-byte big-endian length prefix
// followed by one JSON document per frame, one Request/Response pair at a
// time per connection. The same Request/Response types ride the HTTP front
// door (POST /query on the debug mux).
package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
)

// MaxFrameBytes bounds a single protocol frame; larger frames indicate a
// corrupt stream (or an abusive client) and kill the connection.
const MaxFrameBytes = 64 << 20

// Request is one query submission.
type Request struct {
	// ID is an opaque client token echoed in the response.
	ID string `json:"id,omitempty"`
	// Tenant names the quota bucket; empty means "default".
	Tenant string `json:"tenant,omitempty"`
	// Query is the SQL text, planned against the server's TPC-H catalog.
	Query string `json:"query"`
	// MaxRows truncates the rows returned (not computed); 0 returns all.
	MaxRows int `json:"max_rows,omitempty"`
}

// Response codes. Rejections mirror the typed *Reject errors of the
// admission layer; "error" covers parse/plan/execution failures.
const (
	CodeOK       = "ok"
	CodeBadQuery = "bad_query"
	CodeError    = "error"
)

// Response is the outcome of one Request.
type Response struct {
	ID   string `json:"id,omitempty"`
	Code string `json:"code"`
	// Error is set for every non-ok code.
	Error string `json:"error,omitempty"`
	// RetryAfterSeconds is the backoff hint accompanying load-shed rejects.
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`

	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	// RowsTotal is the full result cardinality even when Rows is truncated.
	RowsTotal int `json:"rows_total"`

	// Execution report: injected failures handled, partitions recomputed by
	// fine-grained recovery, partitions checkpointed, and the query's
	// wasted-work ledger total (the realized w(c) attributed to the tenant).
	Failures      int     `json:"failures"`
	Recovered     int     `json:"recovered"`
	Materialized  int     `json:"materialized"`
	WastedSeconds float64 `json:"wasted_seconds"`

	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Utilization is the pool utilization sampled at plan time and
	// MatConfig the materialization choice it produced — together they show
	// the load-aware costing at work.
	Utilization float64 `json:"utilization"`
	MatConfig   string  `json:"mat_config,omitempty"`
}

// WriteFrame writes one length-prefixed JSON frame.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("service: encode frame: %w", err)
	}
	if len(body) > MaxFrameBytes {
		return fmt.Errorf("service: frame of %d bytes exceeds limit %d", len(body), MaxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed JSON frame into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return fmt.Errorf("service: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("service: decode frame: %w", err)
	}
	return nil
}

// Client is a synchronous protocol client: one request/response in flight
// per connection (the closed-loop shape ftload measures with).
type Client struct {
	conn net.Conn
}

// Dial connects to an ftserve TCP endpoint.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Do sends one request and waits for its response.
func (c *Client) Do(req Request) (*Response, error) {
	if err := WriteFrame(c.conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := ReadFrame(c.conn, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postQuery(t *testing.T, ts *httptest.Server, req Request) (*http.Response, *Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("decode /query response: %v", err)
	}
	return hr, &resp
}

func TestHTTPFrontDoor(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.HTTPMux())
	defer ts.Close()

	// Happy path: 200 with rows.
	hr, resp := postQuery(t, ts, Request{ID: "h1", Query: "SELECT n_name FROM nation", MaxRows: 2})
	if hr.StatusCode != http.StatusOK || resp.Code != CodeOK {
		t.Fatalf("status %d code %s", hr.StatusCode, resp.Code)
	}
	if resp.ID != "h1" || len(resp.Rows) != 2 {
		t.Fatalf("resp = %+v", resp)
	}

	// Bad query: 400 with bad_query code.
	hr, resp = postQuery(t, ts, Request{Query: "SELEC oops"})
	if hr.StatusCode != http.StatusBadRequest || resp.Code != CodeBadQuery {
		t.Fatalf("bad query: status %d code %s", hr.StatusCode, resp.Code)
	}

	// Health and metrics ride the same mux.
	for _, path := range []string{"/healthz", "/metrics", "/debug/vars"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, r.StatusCode)
		}
	}
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if !strings.Contains(string(text), "ftserve_admitted_total") {
		t.Error("/metrics missing ftserve families")
	}
}

// TestHTTPQueueFull429: a saturated server answers 429 with a Retry-After
// header (whole seconds, >= 1).
func TestHTTPQueueFull429(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.HTTPMux())
	defer ts.Close()
	ctx := context.Background()

	release, rej, err := s.admitGlobal(ctx, "holder")
	if err != nil || rej != nil {
		t.Fatalf("holder: %v %v", err, rej)
	}
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		postQuery(t, ts, Request{Tenant: "queued", Query: "SELECT n_name FROM nation"})
	}()
	for i := 0; s.QueueDepth() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	hr, resp := postQuery(t, ts, Request{Tenant: "shed", Query: "SELECT n_name FROM nation"})
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", hr.StatusCode)
	}
	if resp.Code != string(RejectQueueFull) {
		t.Fatalf("code = %s, want queue_full", resp.Code)
	}
	if ra := hr.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want >= 1 second", ra)
	}
	if resp.RetryAfterSeconds <= 0 {
		t.Fatalf("RetryAfterSeconds = %g, want > 0", resp.RetryAfterSeconds)
	}
	release()
	<-parked
}

// TestHTTPDraining503: during drain /query answers 503 and /healthz flips.
func TestHTTPDraining503(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.HTTPMux())
	defer ts.Close()
	s.Drain()

	hr, resp := postQuery(t, ts, Request{Query: "SELECT n_name FROM nation"})
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", hr.StatusCode)
	}
	if resp.Code != string(RejectDraining) {
		t.Fatalf("code = %s, want draining", resp.Code)
	}
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz during drain = %d, want 503", r.StatusCode)
	}
}

// TestTCPClientErrors: the framed protocol surfaces rejects and bad queries
// as coded responses on a live TCP connection.
func TestTCPClientCodes(t *testing.T) {
	s := newTestServer(t, Config{TenantRate: 1.0 / 3600, TenantBurst: 1})
	addr, err := s.StartTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Do(Request{ID: "a", Tenant: "alice", Query: "SELECT n_name FROM nation"})
	if err != nil || resp.Code != CodeOK {
		t.Fatalf("first query: %v %+v", err, resp)
	}
	resp, err = c.Do(Request{ID: "b", Tenant: "alice", Query: "SELECT n_name FROM nation"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != string(RejectQuota) || resp.RetryAfterSeconds <= 0 {
		t.Fatalf("quota response = %+v", resp)
	}
	resp, err = c.Do(Request{ID: "c", Tenant: "bob", Query: "SELEC oops"})
	if err != nil || resp.Code != CodeBadQuery {
		t.Fatalf("bad query response: %v %+v", err, resp)
	}
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func uniformValues(n int, lo, hi float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}

func TestBuildHistogramValidation(t *testing.T) {
	if _, err := BuildHistogram(nil, 4); err == nil {
		t.Error("empty values accepted")
	}
	if _, err := BuildHistogram([]float64{1}, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	h, err := BuildHistogram([]float64{5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 1 || h.DistinctEst != 1 {
		t.Errorf("singleton histogram wrong: %+v", h)
	}
}

func TestHistogramEquiDepth(t *testing.T) {
	vals := uniformValues(10000, 0, 100, 1)
	h, err := BuildHistogram(vals, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Counts) != 10 {
		t.Fatalf("want 10 buckets, got %d", len(h.Counts))
	}
	for _, c := range h.Counts {
		if c != 1000 {
			t.Errorf("bucket count %d, want 1000 (equi-depth)", c)
		}
	}
}

func TestHistogramUniformSelectivities(t *testing.T) {
	vals := uniformValues(50000, 0, 100, 2)
	h, err := BuildHistogram(vals, 20)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		op   string
		v    float64
		want float64
	}{
		{"<", 25, 0.25}, {"<", 50, 0.50}, {"<", 90, 0.90},
		{">", 75, 0.25}, {"<", -5, 0}, {"<", 200, 1},
	}
	for _, c := range cases {
		got, err := h.Selectivity(c.op, c.v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 0.02 {
			t.Errorf("sel(col %s %g) = %.3f, want ~%.2f", c.op, c.v, got, c.want)
		}
	}
	if s := h.SelectivityRange(20, 40); math.Abs(s-0.2) > 0.02 {
		t.Errorf("range [20,40) = %.3f, want ~0.2", s)
	}
}

func TestHistogramSkewedData(t *testing.T) {
	// 90% of values are 0, the rest uniform in (0,100]: a fixed 1/3
	// range-selectivity guess would be badly wrong, the histogram is not.
	var vals []float64
	for i := 0; i < 9000; i++ {
		vals = append(vals, 0)
	}
	vals = append(vals, uniformValues(1000, 0.001, 100, 3)...)
	h, err := BuildHistogram(vals, 20)
	if err != nil {
		t.Fatal(err)
	}
	got := h.SelectivityGreater(1)
	want := 0.099 // ~990 of 10000
	if math.Abs(got-want) > 0.03 {
		t.Errorf("sel(col > 1) = %.3f, want ~%.2f on skewed data", got, want)
	}
}

func TestHistogramEqUsesDistinct(t *testing.T) {
	vals := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	h, err := BuildHistogram(vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.DistinctEst != 4 {
		t.Fatalf("distinct = %g, want 4", h.DistinctEst)
	}
	if got := h.SelectivityEq(2); got != 0.25 {
		t.Errorf("eq selectivity = %g, want 0.25", got)
	}
	if got := h.SelectivityEq(99); got != 0 {
		t.Errorf("out-of-range eq = %g, want 0", got)
	}
}

func TestHistogramUnknownOperator(t *testing.T) {
	h, _ := BuildHistogram([]float64{1, 2, 3}, 2)
	if _, err := h.Selectivity("~", 1); err == nil {
		t.Error("unknown operator accepted")
	}
}

// Property: selectivities are always within [0,1], and complementary ops sum
// to ~1.
func TestHistogramProperties(t *testing.T) {
	vals := uniformValues(5000, -50, 50, 4)
	h, err := BuildHistogram(vals, 16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw int16) bool {
		v := float64(raw) / 100
		lt := h.SelectivityLess(v)
		eq := h.SelectivityEq(v)
		gt := h.SelectivityGreater(v)
		if lt < 0 || lt > 1 || eq < 0 || eq > 1 || gt < 0 || gt > 1 {
			return false
		}
		return math.Abs(lt+eq+gt-1) < 0.02
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SelectivityLess is monotone.
func TestHistogramMonotone(t *testing.T) {
	vals := uniformValues(2000, 0, 10, 5)
	h, err := BuildHistogram(vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for v := -1.0; v <= 11; v += 0.1 {
		s := h.SelectivityLess(v)
		if s < prev-1e-12 {
			t.Fatalf("SelectivityLess not monotone at %g", v)
		}
		prev = s
	}
}

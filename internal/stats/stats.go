// Package stats provides the statistics layer the cost-based fault-tolerance
// optimizer depends on: cardinality estimation primitives, derivation of
// operator cost estimates tr(o)/tm(o) from cardinalities (paper Section 2.1:
// "typically these estimates are calculated based on input/output
// cardinalities of each operator"), and the perturbation helpers used by the
// robustness experiment (paper Table 3).
package stats

import (
	"fmt"

	"ftpde/internal/plan"
)

// EqJoinSelectivity estimates the selectivity of an equi-join between columns
// with d1 and d2 distinct values using the textbook 1/max(d1,d2) formula.
func EqJoinSelectivity(d1, d2 float64) float64 {
	m := d1
	if d2 > m {
		m = d2
	}
	if m <= 1 {
		return 1
	}
	return 1 / m
}

// JoinCardinality estimates |L JOIN R| for the given selectivity.
func JoinCardinality(left, right, selectivity float64) float64 {
	return left * right * selectivity
}

// CostParams converts cardinalities into partition-parallel cost estimates.
// All costs are "accumulated" per the paper: the wall time the operator
// contributes when executed in parallel over all partitions.
type CostParams struct {
	// CPUPerRow is the processing cost per input/output row touched, summed
	// over the cluster (seconds per row at CONSTcost = 1). Two online loops
	// correct it when live execution disagrees: the drift detector's tr term
	// (wall-clock spans) and, when the continuous profiler is attached, its
	// tp_cpu term (measured on-CPU seconds per operator), which takes
	// precedence because it excludes blocked time.
	CPUPerRow float64
	// WritePerRow is the cost per row written to the fault-tolerant storage
	// medium. The paper's setup writes to a shared iSCSI target over 1 GbE,
	// which is why this typically exceeds CPUPerRow by an order of magnitude.
	WritePerRow float64
	// Nodes is the partition parallelism: per-row costs are divided by it.
	Nodes int
}

// Validate reports whether the parameters are usable.
func (c CostParams) Validate() error {
	if c.CPUPerRow <= 0 {
		return fmt.Errorf("stats: CPUPerRow must be positive, got %g", c.CPUPerRow)
	}
	if c.WritePerRow <= 0 {
		return fmt.Errorf("stats: WritePerRow must be positive, got %g", c.WritePerRow)
	}
	if c.Nodes <= 0 {
		return fmt.Errorf("stats: Nodes must be positive, got %d", c.Nodes)
	}
	return nil
}

// OpCosts derives (tr, tm) for an operator that touches workRows rows
// (inputs plus outputs) and emits outRows rows.
func (c CostParams) OpCosts(workRows, outRows float64) (tr, tm float64) {
	n := float64(c.Nodes)
	return workRows * c.CPUPerRow / n, outRows * c.WritePerRow / n
}

// ScaleRunCosts multiplies every operator's tr by factor. Combined with
// ScaleMatCosts it implements Table 3's "Compute & I/O costs x f"
// perturbation.
func ScaleRunCosts(p *plan.Plan, factor float64) {
	for _, op := range p.Operators() {
		op.RunCost *= factor
	}
}

// ScaleMatCosts multiplies every operator's tm by factor — Table 3's
// "I/O costs x f" perturbation.
func ScaleMatCosts(p *plan.Plan, factor float64) {
	for _, op := range p.Operators() {
		op.MatCost *= factor
	}
}

// CriticalPath returns the longest source-to-sink path length weighted by
// tr(o) only — the failure-free makespan of a fully pipelined plan under
// inter-operator parallelism, which serves as the baseline runtime in the
// paper's overhead metric.
func CriticalPath(p *plan.Plan) float64 {
	longest := make(map[plan.OpID]float64)
	order, err := p.TopoOrder()
	if err != nil {
		return 0
	}
	best := 0.0
	for _, id := range order {
		l := 0.0
		for _, pa := range p.Inputs(id) {
			if longest[pa] > l {
				l = longest[pa]
			}
		}
		l += p.Op(id).RunCost
		longest[id] = l
		if l > best {
			best = l
		}
	}
	return best
}

// NormalizeBaseline rescales all operator costs uniformly so the plan's
// critical path equals target. Used to calibrate synthetic TPC-H plans to
// the baseline runtimes the paper reports (e.g. Q5@SF100 = 905.33 s).
func NormalizeBaseline(p *plan.Plan, target float64) error {
	cur := CriticalPath(p)
	if cur <= 0 {
		return fmt.Errorf("stats: plan has zero critical path")
	}
	if target <= 0 {
		return fmt.Errorf("stats: target baseline must be positive, got %g", target)
	}
	f := target / cur
	ScaleRunCosts(p, f)
	ScaleMatCosts(p, f)
	return nil
}

package stats

import (
	"math"
	"testing"
	"testing/quick"

	"ftpde/internal/plan"
)

func TestEqJoinSelectivity(t *testing.T) {
	if got := EqJoinSelectivity(100, 50); got != 0.01 {
		t.Errorf("sel(100,50) = %g, want 0.01", got)
	}
	if got := EqJoinSelectivity(0.5, 0.1); got != 1 {
		t.Errorf("degenerate distinct counts should clamp to 1, got %g", got)
	}
}

func TestJoinCardinality(t *testing.T) {
	if got := JoinCardinality(1000, 500, 0.002); got != 1000 {
		t.Errorf("card = %g, want 1000", got)
	}
}

func TestCostParams(t *testing.T) {
	c := CostParams{CPUPerRow: 2, WritePerRow: 20, Nodes: 10}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, tm := c.OpCosts(100, 10)
	if tr != 20 || tm != 20 {
		t.Errorf("OpCosts = (%g,%g), want (20,20)", tr, tm)
	}
	for _, bad := range []CostParams{
		{CPUPerRow: 0, WritePerRow: 1, Nodes: 1},
		{CPUPerRow: 1, WritePerRow: 0, Nodes: 1},
		{CPUPerRow: 1, WritePerRow: 1, Nodes: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid params accepted: %+v", bad)
		}
	}
}

func TestCriticalPathLinear(t *testing.T) {
	p := plan.New()
	a := p.Add(plan.Operator{Name: "a", RunCost: 1})
	b := p.Add(plan.Operator{Name: "b", RunCost: 2})
	c := p.Add(plan.Operator{Name: "c", RunCost: 3})
	p.MustConnect(a, b)
	p.MustConnect(b, c)
	if got := CriticalPath(p); got != 6 {
		t.Errorf("critical path = %g, want 6", got)
	}
}

func TestCriticalPathDAG(t *testing.T) {
	// Diamond where the right branch is longer.
	p := plan.New()
	src := p.Add(plan.Operator{Name: "src", RunCost: 1})
	l := p.Add(plan.Operator{Name: "l", RunCost: 1})
	r := p.Add(plan.Operator{Name: "r", RunCost: 10})
	top := p.Add(plan.Operator{Name: "top", RunCost: 1})
	p.MustConnect(src, l)
	p.MustConnect(src, r)
	p.MustConnect(l, top)
	p.MustConnect(r, top)
	if got := CriticalPath(p); got != 12 {
		t.Errorf("critical path = %g, want 12 (src,r,top)", got)
	}
	// The paper example: longest tr path is 2,3,4,5,7 = 1.5+2+1+1.5+1.7.
	ex := plan.PaperExample()
	if got, want := CriticalPath(ex), 7.7; math.Abs(got-want) > 1e-9 {
		t.Errorf("paper example critical path = %g, want %g", got, want)
	}
}

func TestScaleCosts(t *testing.T) {
	p := plan.PaperExample()
	trBefore := p.TotalRunCost()
	tmBefore := p.TotalMatCost()
	ScaleRunCosts(p, 2)
	if got := p.TotalRunCost(); math.Abs(got-2*trBefore) > 1e-9 {
		t.Errorf("run costs scaled to %g, want %g", got, 2*trBefore)
	}
	if got := p.TotalMatCost(); got != tmBefore {
		t.Errorf("mat costs changed by ScaleRunCosts")
	}
	ScaleMatCosts(p, 0.5)
	if got := p.TotalMatCost(); math.Abs(got-0.5*tmBefore) > 1e-9 {
		t.Errorf("mat costs scaled to %g, want %g", got, 0.5*tmBefore)
	}
}

func TestNormalizeBaseline(t *testing.T) {
	p := plan.PaperExample()
	matRatio := p.TotalMatCost() / p.TotalRunCost()
	if err := NormalizeBaseline(p, 905.33); err != nil {
		t.Fatal(err)
	}
	if got := CriticalPath(p); math.Abs(got-905.33) > 1e-6 {
		t.Errorf("critical path after normalize = %g, want 905.33", got)
	}
	// Uniform scaling preserves the materialization/runtime ratio.
	if got := p.TotalMatCost() / p.TotalRunCost(); math.Abs(got-matRatio) > 1e-9 {
		t.Errorf("mat ratio changed: %g != %g", got, matRatio)
	}
	if err := NormalizeBaseline(p, -1); err == nil {
		t.Error("negative target accepted")
	}
	zero := plan.New()
	zero.Add(plan.Operator{Name: "z"})
	if err := NormalizeBaseline(zero, 10); err == nil {
		t.Error("zero critical path accepted")
	}
}

func TestNormalizeBaselineProperty(t *testing.T) {
	f := func(raw uint16) bool {
		target := float64(raw)/10 + 0.1
		p := plan.PaperExample()
		if err := NormalizeBaseline(p, target); err != nil {
			return false
		}
		return math.Abs(CriticalPath(p)-target) < 1e-6*target+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

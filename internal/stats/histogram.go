package stats

import (
	"fmt"
	"sort"
)

// Histogram is an equi-depth histogram over a numeric column: bucket
// boundaries chosen so each bucket holds ~the same number of values.
// It estimates range- and equality-predicate selectivities, replacing the
// fixed magic constants classical optimizers fall back to.
type Histogram struct {
	// Bounds holds len(buckets)+1 boundaries; bucket i covers
	// [Bounds[i], Bounds[i+1]) except the last, which is inclusive.
	Bounds []float64
	// Counts holds per-bucket value counts.
	Counts []int
	// Total is the number of values summarized.
	Total int
	// DistinctEst estimates the number of distinct values.
	DistinctEst float64
}

// BuildHistogram summarizes values into at most buckets equi-depth buckets.
func BuildHistogram(values []float64, buckets int) (*Histogram, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("stats: need at least one bucket, got %d", buckets)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("stats: no values to summarize")
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)

	distinct := 1.0
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			distinct++
		}
	}

	if buckets > len(sorted) {
		buckets = len(sorted)
	}
	h := &Histogram{Total: len(sorted), DistinctEst: distinct}
	per := len(sorted) / buckets
	rem := len(sorted) % buckets
	idx := 0
	h.Bounds = append(h.Bounds, sorted[0])
	for b := 0; b < buckets; b++ {
		n := per
		if b < rem {
			n++
		}
		if n == 0 {
			continue
		}
		idx += n
		h.Counts = append(h.Counts, n)
		if idx < len(sorted) {
			h.Bounds = append(h.Bounds, sorted[idx])
		} else {
			h.Bounds = append(h.Bounds, sorted[len(sorted)-1])
		}
	}
	return h, nil
}

// SelectivityLess estimates P(col < v).
func (h *Histogram) SelectivityLess(v float64) float64 {
	if v <= h.Bounds[0] {
		return 0
	}
	last := h.Bounds[len(h.Bounds)-1]
	if v > last {
		return 1
	}
	seen := 0.0
	for b := 0; b < len(h.Counts); b++ {
		lo, hi := h.Bounds[b], h.Bounds[b+1]
		if v >= hi {
			seen += float64(h.Counts[b])
			continue
		}
		// Linear interpolation within the bucket.
		if hi > lo {
			seen += float64(h.Counts[b]) * (v - lo) / (hi - lo)
		}
		break
	}
	sel := seen / float64(h.Total)
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

// SelectivityGreater estimates P(col > v).
func (h *Histogram) SelectivityGreater(v float64) float64 {
	s := 1 - h.SelectivityLess(v) - h.SelectivityEq(v)
	if s < 0 {
		return 0
	}
	return s
}

// SelectivityEq estimates P(col = v) using the uniform-within-distinct
// assumption.
func (h *Histogram) SelectivityEq(v float64) float64 {
	if v < h.Bounds[0] || v > h.Bounds[len(h.Bounds)-1] {
		return 0
	}
	if h.DistinctEst <= 0 {
		return 0
	}
	return 1 / h.DistinctEst
}

// SelectivityRange estimates P(lo <= col < hi).
func (h *Histogram) SelectivityRange(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	s := h.SelectivityLess(hi) - h.SelectivityLess(lo)
	if s < 0 {
		return 0
	}
	return s
}

// Selectivity dispatches on a comparison operator string (the SQL dialect's
// operators).
func (h *Histogram) Selectivity(op string, v float64) (float64, error) {
	switch op {
	case "=":
		return h.SelectivityEq(v), nil
	case "<>", "!=":
		return 1 - h.SelectivityEq(v), nil
	case "<":
		return h.SelectivityLess(v), nil
	case "<=":
		return h.SelectivityLess(v) + h.SelectivityEq(v), nil
	case ">":
		return h.SelectivityGreater(v), nil
	case ">=":
		return h.SelectivityGreater(v) + h.SelectivityEq(v), nil
	default:
		return 0, fmt.Errorf("stats: unknown operator %q", op)
	}
}

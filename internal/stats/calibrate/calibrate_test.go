package calibrate

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"ftpde/internal/cost"
	"ftpde/internal/stats"
)

func TestMTBFRecoversExponentialRate(t *testing.T) {
	// Cluster of 10 nodes with per-node MTBF 3600s: cluster inter-arrivals
	// are exponential with mean 360s.
	const nodes, perNode = 10, 3600.0
	rng := rand.New(rand.NewSource(42))
	e := New(nodes)
	for i := 0; i < 800; i++ {
		e.ObserveInterarrival(rng.ExpFloat64() * perNode / nodes)
	}
	est := e.MTBF()
	if !est.Valid() {
		t.Fatalf("estimate invalid: %+v", est)
	}
	if rel := math.Abs(est.PerNode-perNode) / perNode; rel > 0.10 {
		t.Errorf("per-node MTBF = %g, want %g within 10%% (rel %.3f)", est.PerNode, perNode, rel)
	}
	if est.Lo >= est.Hi {
		t.Errorf("CI inverted: [%g, %g]", est.Lo, est.Hi)
	}
	if perNode < est.Lo || perNode > est.Hi {
		t.Errorf("true MTBF %g outside 95%% CI [%g, %g]", perNode, est.Lo, est.Hi)
	}
	// With n=800 the CI must be reasonably tight (relative width well under
	// the ±20% acceptance band).
	if width := (est.Hi - est.Lo) / est.PerNode; width > 0.30 {
		t.Errorf("CI too wide for n=800: relative width %.3f", width)
	}
}

func TestObserveArrivalsSortsAndDiffs(t *testing.T) {
	e := New(1)
	e.ObserveArrivals([]float64{30, 10, 20}) // unsorted on purpose
	est := e.MTBF()
	if est.Samples != 2 {
		t.Fatalf("samples = %d, want 2", est.Samples)
	}
	if est.Cluster != 10 {
		t.Errorf("cluster mean = %g, want 10", est.Cluster)
	}
	// A single arrival carries no inter-arrival information.
	e2 := New(1)
	e2.ObserveArrivals([]float64{5})
	if e2.MTBF().Samples != 0 {
		t.Error("single arrival produced inter-arrival samples")
	}
}

func TestEmptyEstimatorIsInvalid(t *testing.T) {
	e := New(4)
	if e.MTBF().Valid() {
		t.Error("empty estimator claims a valid MTBF")
	}
	if mttr, n := e.MTTR(); mttr != 0 || n != 0 {
		t.Errorf("empty MTTR = %g/%d", mttr, n)
	}
	trF, tmF := e.Factors()
	if trF != 1 || tmF != 1 {
		t.Errorf("empty factors = %g/%g, want 1/1", trF, tmF)
	}
}

func TestFactorsFitSlopeThroughOrigin(t *testing.T) {
	e := New(1)
	// Observations exactly 1.5x the tr predictions, 0.5x the tm predictions.
	for _, p := range []float64{1, 2, 5} {
		e.ObserveOp(p, 1.5*p, p, 0.5*p)
	}
	trF, tmF := e.Factors()
	if math.Abs(trF-1.5) > 1e-12 || math.Abs(tmF-0.5) > 1e-12 {
		t.Errorf("factors = %g/%g, want 1.5/0.5", trF, tmF)
	}
	ntr, ntm := e.Samples()
	if ntr != 3 || ntm != 3 {
		t.Errorf("samples = %d/%d, want 3/3", ntr, ntm)
	}
	// Non-positive pairs carry no signal and must be skipped.
	e.ObserveOp(0, 5, -1, 5)
	if ntr2, ntm2 := e.Samples(); ntr2 != 3 || ntm2 != 3 {
		t.Errorf("non-positive predictions were recorded: %d/%d", ntr2, ntm2)
	}
}

func TestMTTRMean(t *testing.T) {
	e := New(1)
	e.ObserveRepair(1)
	e.ObserveRepair(3)
	mttr, n := e.MTTR()
	if n != 2 || mttr != 2 {
		t.Errorf("MTTR = %g/%d, want 2/2", mttr, n)
	}
}

func TestModelAndParamsCalibration(t *testing.T) {
	e := New(4)
	for i := 0; i < 100; i++ {
		e.ObserveInterarrival(25) // cluster mean 25s -> per-node 100s
	}
	e.ObserveRepair(2)
	e.ObserveOp(1, 2, 1, 3) // tr factor 2, tm factor 3

	base := cost.Model{MTBF: 3600, MTTR: 1, Percentile: 0.95, PipeConst: 1, Nodes: 4}
	m := e.Model(base)
	if m.MTBF != 100 {
		t.Errorf("calibrated MTBF = %g, want 100", m.MTBF)
	}
	if m.MTTR != 2 {
		t.Errorf("calibrated MTTR = %g, want 2", m.MTTR)
	}
	if m.Percentile != base.Percentile || m.Nodes != base.Nodes {
		t.Error("calibration touched unrelated model fields")
	}

	cp := e.Params(stats.CostParams{CPUPerRow: 1e-6, WritePerRow: 2e-5, Nodes: 4})
	if math.Abs(cp.CPUPerRow-2e-6) > 1e-18 {
		t.Errorf("calibrated CPUPerRow = %g, want 2e-6", cp.CPUPerRow)
	}
	if math.Abs(cp.WritePerRow-6e-5) > 1e-18 {
		t.Errorf("calibrated WritePerRow = %g, want 6e-5", cp.WritePerRow)
	}
}

func TestChiSquareQuantileAccuracy(t *testing.T) {
	// Reference values (R: qchisq(p, df)). Wilson–Hilferty is good to a
	// fraction of a percent at these degrees of freedom.
	cases := []struct{ p, df, want float64 }{
		{0.975, 10, 20.483},
		{0.025, 10, 3.247},
		{0.975, 100, 129.561},
		{0.025, 100, 74.222},
	}
	for _, c := range cases {
		got := chiSquareQuantile(c.p, c.df)
		if rel := math.Abs(got-c.want) / c.want; rel > 0.01 {
			t.Errorf("chi2(%g, %g) = %g, want %g (rel %.4f)", c.p, c.df, got, c.want, rel)
		}
	}
}

func TestNormalQuantile(t *testing.T) {
	if z := normalQuantile(0.975); math.Abs(z-1.959964) > 1e-5 {
		t.Errorf("z(0.975) = %g", z)
	}
	if z := normalQuantile(0.5); math.Abs(z) > 1e-12 {
		t.Errorf("z(0.5) = %g", z)
	}
	if z := normalQuantile(0.001); math.Abs(z+3.090232) > 1e-5 {
		t.Errorf("z(0.001) = %g", z)
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Error("quantile at the boundaries must be infinite")
	}
}

func TestSummaryMentionsEverything(t *testing.T) {
	e := New(2)
	e.ObserveInterarrival(10)
	e.ObserveRepair(1)
	s := e.Summary()
	for _, want := range []string{"MTBF per node", "MTTR", "tr factor", "tm factor"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}

// Package calibrate closes the feedback loop between observation and the
// cost model: it turns observed failure inter-arrival times into an MTBF
// estimate with a confidence interval (exponential fit, the paper's failure
// model), observed recovery windows into an MTTR estimate, and observed
// per-operator wall/materialization times into tr/tm correction factors —
// producing a calibrated cost.Model and stats.CostParams that feed back into
// findBestFTPlan. The paper treats MTBF, MTTR, tr(o) and tm(o) as given
// inputs (Sections 3-4); this package is where a running system gets them.
package calibrate

import (
	"fmt"
	"math"
	"sort"

	"ftpde/internal/cost"
	"ftpde/internal/stats"
)

// Estimator accumulates observations across query runs. It is not safe for
// concurrent use; feed it from the coordinator thread between runs.
type Estimator struct {
	nodes int

	interarrivals []float64 // cluster-level failure inter-arrival times, seconds
	repairs       []float64 // observed repair (recovery-window) durations, seconds

	trPred, trObs []float64 // per collapsed-operator runtime pairs, seconds
	tmPred, tmObs []float64 // per collapsed-operator materialization pairs, seconds
}

// New returns an estimator for a cluster of the given size.
func New(nodes int) *Estimator {
	if nodes < 1 {
		nodes = 1
	}
	return &Estimator{nodes: nodes}
}

// ObserveArrivals records a cluster failure log: absolute arrival times (in
// seconds, any monotonic origin). Consecutive differences become
// inter-arrival samples; the times need not be pre-sorted.
func (e *Estimator) ObserveArrivals(times []float64) {
	if len(times) < 2 {
		return
	}
	ts := append([]float64(nil), times...)
	sort.Float64s(ts)
	for i := 1; i < len(ts); i++ {
		d := ts[i] - ts[i-1]
		if d >= 0 {
			e.interarrivals = append(e.interarrivals, d)
		}
	}
}

// ObserveInterarrival records one cluster-level inter-arrival time directly.
func (e *Estimator) ObserveInterarrival(d float64) {
	if d >= 0 {
		e.interarrivals = append(e.interarrivals, d)
	}
}

// ObserveRepair records one observed repair duration (a recovery window).
func (e *Estimator) ObserveRepair(d float64) {
	if d >= 0 {
		e.repairs = append(e.repairs, d)
	}
}

// ObserveOp records one collapsed operator's predicted-vs-observed pair:
// tr(c) against its failure-free task wall time and — when the operator
// materialized — tm(c) against its checkpoint write wall time. Non-positive
// predictions carry no calibration signal and are skipped.
func (e *Estimator) ObserveOp(predTR, obsTR, predTM, obsTM float64) {
	if predTR > 0 && obsTR > 0 {
		e.trPred = append(e.trPred, predTR)
		e.trObs = append(e.trObs, obsTR)
	}
	if predTM > 0 && obsTM > 0 {
		e.tmPred = append(e.tmPred, predTM)
		e.tmObs = append(e.tmObs, obsTM)
	}
}

// MTBFEstimate is the exponential fit over the observed failure log.
type MTBFEstimate struct {
	// PerNode is the estimated per-node MTBF in seconds (the cost.Model
	// parameter): cluster mean inter-arrival × nodes, by the superposition
	// property of independent Poisson processes.
	PerNode float64 `json:"per_node"`
	// Cluster is the mean cluster-level inter-arrival time in seconds.
	Cluster float64 `json:"cluster"`
	// Lo and Hi bound PerNode at 95% confidence (exact exponential CI via
	// the chi-square distribution of 2·n·mean/θ).
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Samples is the number of inter-arrival observations.
	Samples int `json:"samples"`
}

// Valid reports whether enough samples back the estimate.
func (m MTBFEstimate) Valid() bool { return m.Samples > 0 && m.PerNode > 0 }

// MTBF fits an exponential to the observed inter-arrival times: the MLE of
// the mean is the sample mean, and 2·T/θ is chi-square distributed with 2n
// degrees of freedom, giving the exact confidence interval
// θ ∈ [2T/χ²(1−α/2, 2n), 2T/χ²(α/2, 2n)].
func (e *Estimator) MTBF() MTBFEstimate {
	return FitMTBF(e.interarrivals, e.nodes)
}

// FitMTBF runs the exponential MLE fit over a cluster-level inter-arrival
// sample (seconds) for a cluster of the given size. Exported so streaming
// estimators (the obs drift detector's rolling window) reuse exactly the
// same math as the offline calibrator; negative samples are the caller's
// responsibility to filter.
func FitMTBF(interarrivals []float64, nodes int) MTBFEstimate {
	if nodes < 1 {
		nodes = 1
	}
	n := len(interarrivals)
	if n == 0 {
		return MTBFEstimate{}
	}
	var total float64
	for _, d := range interarrivals {
		total += d
	}
	mean := total / float64(n)
	est := MTBFEstimate{
		Cluster: mean,
		PerNode: mean * float64(nodes),
		Samples: n,
	}
	k := 2 * float64(n)
	lo := 2 * total / chiSquareQuantile(0.975, k)
	hi := 2 * total / chiSquareQuantile(0.025, k)
	est.Lo = lo * float64(nodes)
	est.Hi = hi * float64(nodes)
	return est
}

// MTTR returns the mean observed repair duration and the sample count.
func (e *Estimator) MTTR() (float64, int) {
	if len(e.repairs) == 0 {
		return 0, 0
	}
	var total float64
	for _, d := range e.repairs {
		total += d
	}
	return total / float64(len(e.repairs)), len(e.repairs)
}

// Factors returns the tr and tm correction factors: the least-squares slope
// through the origin of observed against predicted (Σ pred·obs / Σ pred²),
// i.e. the multiplier that makes the model's per-operator forecasts best fit
// what execution measured. A dimension without samples keeps factor 1.
func (e *Estimator) Factors() (trFactor, tmFactor float64) {
	return slope(e.trPred, e.trObs), slope(e.tmPred, e.tmObs)
}

func slope(pred, obs []float64) float64 {
	var num, den float64
	for i := range pred {
		num += pred[i] * obs[i]
		den += pred[i] * pred[i]
	}
	if den <= 0 || num <= 0 {
		return 1
	}
	return num / den
}

// Samples reports how many pairs back each correction factor.
func (e *Estimator) Samples() (tr, tm int) { return len(e.trPred), len(e.tmPred) }

// Model produces a calibrated cost model: base with MTBF and MTTR replaced by
// the estimates (when backed by samples).
func (e *Estimator) Model(base cost.Model) cost.Model {
	out := base
	if est := e.MTBF(); est.Valid() {
		out.MTBF = est.PerNode
	}
	if mttr, n := e.MTTR(); n > 0 && mttr > 0 {
		out.MTTR = mttr
	}
	return out
}

// Params produces calibrated cost parameters: the per-row constants scaled by
// the tr/tm correction factors, so re-planning uses observed operator speeds.
func (e *Estimator) Params(base stats.CostParams) stats.CostParams {
	trF, tmF := e.Factors()
	out := base
	out.CPUPerRow *= trF
	out.WritePerRow *= tmF
	return out
}

// Summary renders the estimator's state for CLI output.
func (e *Estimator) Summary() string {
	est := e.MTBF()
	mttr, nr := e.MTTR()
	trF, tmF := e.Factors()
	ntr, ntm := e.Samples()
	return fmt.Sprintf(
		"MTBF per node: %.4gs (95%% CI [%.4g, %.4g], %d inter-arrivals)\nMTTR: %.4gs (%d recovery windows)\ntr factor: %.4g (%d ops), tm factor: %.4g (%d ops)",
		est.PerNode, est.Lo, est.Hi, est.Samples, mttr, nr, trF, ntr, tmF, ntm)
}

// chiSquareQuantile approximates the chi-square quantile function via the
// Wilson–Hilferty cube transformation — accurate to a fraction of a percent
// for the k = 2n degrees of freedom the MTBF interval needs.
func chiSquareQuantile(p, k float64) float64 {
	z := normalQuantile(p)
	a := 2.0 / (9.0 * k)
	v := 1 - a + z*math.Sqrt(a)
	return k * v * v * v
}

// normalQuantile is Acklam's rational approximation of the standard normal
// quantile function (relative error below 1.15e-9 over (0,1)).
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-pLow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

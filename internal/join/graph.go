// Package join implements join-order enumeration for the first phase of the
// paper's enumeration function enumFTPlans: a dynamic-programming enumerator
// over the join graph (no cartesian products) that yields either all
// equivalent join orders or the top-k plans ordered by failure-free cost.
//
// Join trees are "ordered": left and right children are distinguished (build
// vs. probe side), so a chain of six relations yields the paper's 1344
// equivalent join orders for TPC-H Q5 (Catalan(5) * 2^5).
package join

import (
	"fmt"
	"math/bits"
)

// Relation is a base relation (a leaf of a join tree).
type Relation struct {
	Name string
	// Rows is the relation's cardinality after local predicates.
	Rows float64
}

// Graph is a join graph: relations plus join edges with selectivities.
type Graph struct {
	rels  []Relation
	edges map[[2]int]float64 // canonical (lo,hi) -> selectivity
}

// NewGraph returns an empty join graph.
func NewGraph() *Graph {
	return &Graph{edges: make(map[[2]int]float64)}
}

// AddRelation adds a relation and returns its index.
func (g *Graph) AddRelation(r Relation) int {
	g.rels = append(g.rels, r)
	return len(g.rels) - 1
}

// AddEdge declares a join predicate between relations a and b with the given
// selectivity.
func (g *Graph) AddEdge(a, b int, selectivity float64) error {
	if a < 0 || a >= len(g.rels) || b < 0 || b >= len(g.rels) {
		return fmt.Errorf("join: edge references unknown relation (%d,%d)", a, b)
	}
	if a == b {
		return fmt.Errorf("join: self-edge on relation %d", a)
	}
	if selectivity <= 0 || selectivity > 1 {
		return fmt.Errorf("join: selectivity must be in (0,1], got %g", selectivity)
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	key := [2]int{lo, hi}
	if _, dup := g.edges[key]; dup {
		return fmt.Errorf("join: duplicate edge (%d,%d)", a, b)
	}
	g.edges[key] = selectivity
	return nil
}

// Relations returns the graph's relations.
func (g *Graph) Relations() []Relation { return g.rels }

// Len returns the number of relations.
func (g *Graph) Len() int { return len(g.rels) }

// connected reports whether the relations in mask form a connected subgraph.
func (g *Graph) connected(mask uint) bool {
	if mask == 0 {
		return false
	}
	start := uint(bits.TrailingZeros(mask))
	seen := uint(1) << start
	frontier := []uint{start}
	for len(frontier) > 0 {
		v := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for key := range g.edges {
			a, b := uint(key[0]), uint(key[1])
			var other uint
			switch v {
			case a:
				other = b
			case b:
				other = a
			default:
				continue
			}
			if mask&(1<<other) != 0 && seen&(1<<other) == 0 {
				seen |= 1 << other
				frontier = append(frontier, other)
			}
		}
	}
	return seen == mask
}

// joinable reports whether any edge connects the two disjoint sets.
func (g *Graph) joinable(m1, m2 uint) bool {
	for key := range g.edges {
		a, b := uint(key[0]), uint(key[1])
		if (m1&(1<<a) != 0 && m2&(1<<b) != 0) || (m1&(1<<b) != 0 && m2&(1<<a) != 0) {
			return true
		}
	}
	return false
}

// crossSelectivity returns the product of the selectivities of all edges
// between the two disjoint sets (1.0 if none — callers ensure joinable).
func (g *Graph) crossSelectivity(m1, m2 uint) float64 {
	sel := 1.0
	for key, s := range g.edges {
		a, b := uint(key[0]), uint(key[1])
		if (m1&(1<<a) != 0 && m2&(1<<b) != 0) || (m1&(1<<b) != 0 && m2&(1<<a) != 0) {
			sel *= s
		}
	}
	return sel
}

// Validate checks that the whole graph is connected (so enumeration without
// cartesian products can cover all relations).
func (g *Graph) Validate() error {
	if len(g.rels) == 0 {
		return fmt.Errorf("join: empty graph")
	}
	if len(g.rels) > 30 {
		return fmt.Errorf("join: too many relations (%d) for subset enumeration", len(g.rels))
	}
	full := uint(1)<<uint(len(g.rels)) - 1
	if !g.connected(full) {
		return fmt.Errorf("join: graph is not connected; enumeration would require cartesian products")
	}
	return nil
}

package join

import (
	"math"
	"sort"
	"testing"

	"ftpde/internal/plan"
)

// chain6 builds the TPC-H Q5 join chain R-N-C-O-L-S.
func chain6() *Graph {
	g := NewGraph()
	names := []string{"REGION", "NATION", "CUSTOMER", "ORDERS", "LINEITEM", "SUPPLIER"}
	rows := []float64{5, 25, 150000, 1500000, 6000000, 10000}
	ids := make([]int, len(names))
	for i := range names {
		ids[i] = g.AddRelation(Relation{Name: names[i], Rows: rows[i]})
	}
	for i := 0; i+1 < len(ids); i++ {
		if err := g.AddEdge(ids[i], ids[i+1], 0.001); err != nil {
			panic(err)
		}
	}
	return g
}

// TestQ5Has1344JoinOrders reproduces the paper's Section 5.5 count: "we
// enumerate all 1344 equivalent join orders of TPC-H query 5".
func TestQ5Has1344JoinOrders(t *testing.T) {
	g := chain6()
	n, err := g.CountOrders()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1344 {
		t.Fatalf("Q5 chain join orders = %d, want 1344 (Catalan(5)*2^5)", n)
	}
	all, err := g.EnumerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1344 {
		t.Fatalf("EnumerateAll returned %d trees, want 1344", len(all))
	}
}

func TestEnumerateAllTreesAreValid(t *testing.T) {
	g := chain6()
	all, err := g.EnumerateAll()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, tr := range all {
		if tr.Relations() != 6 {
			t.Fatalf("tree %s covers %d relations", tr.Render(g), tr.Relations())
		}
		s := tr.Render(g)
		if seen[s] {
			t.Fatalf("duplicate tree %s", s)
		}
		seen[s] = true
		if tr.Cost <= 0 || tr.Card <= 0 {
			t.Fatalf("tree %s has non-positive cost/card", s)
		}
	}
}

func TestSmallGraphCounts(t *testing.T) {
	// Two relations: 2 ordered trees (A⨝B, B⨝A).
	g := NewGraph()
	a := g.AddRelation(Relation{Name: "A", Rows: 10})
	b := g.AddRelation(Relation{Name: "B", Rows: 10})
	if err := g.AddEdge(a, b, 0.1); err != nil {
		t.Fatal(err)
	}
	n, err := g.CountOrders()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("2-relation count = %d, want 2", n)
	}

	// Chain of 3: Catalan(2)*2^2 = 8.
	g3 := NewGraph()
	x := g3.AddRelation(Relation{Name: "X", Rows: 10})
	y := g3.AddRelation(Relation{Name: "Y", Rows: 10})
	z := g3.AddRelation(Relation{Name: "Z", Rows: 10})
	if err := g3.AddEdge(x, y, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := g3.AddEdge(y, z, 0.1); err != nil {
		t.Fatal(err)
	}
	n3, err := g3.CountOrders()
	if err != nil {
		t.Fatal(err)
	}
	if n3 != 8 {
		t.Errorf("3-chain count = %d, want 8", n3)
	}

	// Star with center Y: X-Y, Y-Z, plus X-Z missing -> same as chain here;
	// add a clique of 3: every split is joinable -> 12 ordered trees.
	gc := NewGraph()
	x = gc.AddRelation(Relation{Name: "X", Rows: 10})
	y = gc.AddRelation(Relation{Name: "Y", Rows: 10})
	z = gc.AddRelation(Relation{Name: "Z", Rows: 10})
	for _, e := range [][2]int{{x, y}, {y, z}, {x, z}} {
		if err := gc.AddEdge(e[0], e[1], 0.1); err != nil {
			t.Fatal(err)
		}
	}
	nc, err := gc.CountOrders()
	if err != nil {
		t.Fatal(err)
	}
	if nc != 12 {
		t.Errorf("3-clique count = %d, want 12", nc)
	}
}

func TestNoCartesianProducts(t *testing.T) {
	g := NewGraph()
	g.AddRelation(Relation{Name: "A", Rows: 10})
	g.AddRelation(Relation{Name: "B", Rows: 10})
	// No edge: disconnected graph must be rejected.
	if _, err := g.CountOrders(); err == nil {
		t.Error("disconnected graph accepted")
	}
	if _, err := g.TopK(5); err == nil {
		t.Error("disconnected graph accepted by TopK")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := NewGraph()
	a := g.AddRelation(Relation{Name: "A", Rows: 10})
	b := g.AddRelation(Relation{Name: "B", Rows: 10})
	if err := g.AddEdge(a, 7, 0.1); err == nil {
		t.Error("unknown relation accepted")
	}
	if err := g.AddEdge(a, a, 0.1); err == nil {
		t.Error("self edge accepted")
	}
	if err := g.AddEdge(a, b, 0); err == nil {
		t.Error("zero selectivity accepted")
	}
	if err := g.AddEdge(a, b, 1.5); err == nil {
		t.Error("selectivity > 1 accepted")
	}
	if err := g.AddEdge(a, b, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, a, 0.5); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestTopKMatchesExhaustiveMinimum(t *testing.T) {
	g := chain6()
	all, err := g.EnumerateAll()
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]float64, len(all))
	for i, tr := range all {
		costs[i] = tr.Cost
	}
	sort.Float64s(costs)

	top, err := g.TopK(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("TopK returned %d plans, want 10", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Cost < top[i-1].Cost {
			t.Error("TopK result not ascending")
		}
	}
	// The best plan must match the exhaustive minimum exactly. (Top-k DP is
	// exact for the single best plan; deeper ranks are approximate.)
	if math.Abs(top[0].Cost-costs[0]) > 1e-6*costs[0] {
		t.Errorf("TopK best = %g, exhaustive best = %g", top[0].Cost, costs[0])
	}
}

func TestTopKErrors(t *testing.T) {
	g := chain6()
	if _, err := g.TopK(0); err == nil {
		t.Error("k=0 accepted")
	}
	empty := NewGraph()
	if _, err := empty.TopK(1); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestCardinalityEstimation(t *testing.T) {
	g := NewGraph()
	a := g.AddRelation(Relation{Name: "A", Rows: 100})
	b := g.AddRelation(Relation{Name: "B", Rows: 200})
	if err := g.AddEdge(a, b, 0.01); err != nil {
		t.Fatal(err)
	}
	trees, err := g.EnumerateAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trees {
		if tr.Card != 100*200*0.01 {
			t.Errorf("join cardinality = %g, want 200", tr.Card)
		}
		if tr.Cost != tr.Card {
			t.Errorf("C_out of single join = %g, want card %g", tr.Cost, tr.Card)
		}
	}
}

func TestToPlan(t *testing.T) {
	g := chain6()
	top, err := g.TopK(1)
	if err != nil {
		t.Fatal(err)
	}
	coster := SimpleCoster{ScanPerRow: 1e-6, JoinPerInputRow: 1e-6, JoinPerOutputRow: 2e-6, MatPerRow: 5e-6}
	p, root := ToPlan(top[0], g, coster)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 11 { // 6 scans + 5 joins
		t.Errorf("plan has %d operators, want 11", p.Len())
	}
	if got := len(p.Sinks()); got != 1 || p.Sinks()[0] != root {
		t.Errorf("plan sinks = %v, want [%d]", p.Sinks(), root)
	}
	if got := len(p.Sources()); got != 6 {
		t.Errorf("plan has %d sources, want 6", got)
	}
	for _, op := range p.Operators() {
		if op.RunCost <= 0 || op.MatCost <= 0 {
			t.Errorf("operator %d has non-positive costs: %+v", op.ID, op)
		}
		if op.Materialize || op.Bound {
			t.Errorf("operator %d should start free and non-materialized", op.ID)
		}
	}
}

func TestToPlanCostersAreApplied(t *testing.T) {
	g := NewGraph()
	a := g.AddRelation(Relation{Name: "A", Rows: 1000})
	b := g.AddRelation(Relation{Name: "B", Rows: 500})
	if err := g.AddEdge(a, b, 0.002); err != nil {
		t.Fatal(err)
	}
	trees, err := g.EnumerateAll()
	if err != nil {
		t.Fatal(err)
	}
	coster := SimpleCoster{ScanPerRow: 0.001, JoinPerInputRow: 0.002, JoinPerOutputRow: 0.003, MatPerRow: 0.01}
	p, root := ToPlan(trees[0], g, coster)
	joinOp := p.Op(root)
	wantRun := (1000+500)*0.002 + 1000*0.003 // out card = 1000*500*0.002 = 1000
	if math.Abs(joinOp.RunCost-wantRun) > 1e-9 {
		t.Errorf("join run cost = %g, want %g", joinOp.RunCost, wantRun)
	}
	if math.Abs(joinOp.MatCost-10) > 1e-9 {
		t.Errorf("join mat cost = %g, want 10", joinOp.MatCost)
	}
	var scanA *plan.Operator
	for _, op := range p.Operators() {
		if op.Name == "Scan A" {
			scanA = op
		}
	}
	if scanA == nil || scanA.RunCost != 1.0 || scanA.MatCost != 10 {
		t.Errorf("scan A costs wrong: %+v", scanA)
	}
}

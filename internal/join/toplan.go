package join

import (
	"ftpde/internal/plan"
)

// Coster derives operator cost estimates (tr, tm) from cardinalities when a
// join tree is converted into an execution plan. Implementations typically
// scale per-row CPU and I/O constants (see the stats package).
type Coster interface {
	// ScanCosts returns (tr, tm) for scanning the relation.
	ScanCosts(rel Relation) (run, mat float64)
	// JoinCosts returns (tr, tm) for a join producing outCard rows from
	// inputs of leftCard and rightCard rows.
	JoinCosts(leftCard, rightCard, outCard float64) (run, mat float64)
}

// SimpleCoster is a linear cost model: tr = CPU cost per input row plus
// per-output row, tm = I/O cost per output row written to fault-tolerant
// storage.
type SimpleCoster struct {
	// ScanPerRow is the CPU+read cost per scanned row.
	ScanPerRow float64
	// JoinPerInputRow is the CPU cost per probe/build row.
	JoinPerInputRow float64
	// JoinPerOutputRow is the CPU cost per produced row.
	JoinPerOutputRow float64
	// MatPerRow is the cost per row materialized to fault-tolerant storage.
	MatPerRow float64
}

// ScanCosts implements Coster.
func (c SimpleCoster) ScanCosts(rel Relation) (float64, float64) {
	return rel.Rows * c.ScanPerRow, rel.Rows * c.MatPerRow
}

// JoinCosts implements Coster.
func (c SimpleCoster) JoinCosts(leftCard, rightCard, outCard float64) (float64, float64) {
	run := (leftCard+rightCard)*c.JoinPerInputRow + outCard*c.JoinPerOutputRow
	return run, outCard * c.MatPerRow
}

// ToPlan converts a join tree into a DAG-structured execution plan: one scan
// operator per leaf, one hash-join operator per inner node, all free and
// non-materialized (the fault-tolerance optimizer decides materialization).
// It returns the plan and the root operator's ID so callers can stack
// aggregations or sinks on top.
func ToPlan(t *Tree, g *Graph, c Coster) (*plan.Plan, plan.OpID) {
	p := plan.New()
	root := addTree(p, t, g, c)
	return p, root
}

func addTree(p *plan.Plan, t *Tree, g *Graph, c Coster) plan.OpID {
	if t.IsLeaf() {
		rel := g.rels[t.Rel]
		run, mat := c.ScanCosts(rel)
		return p.Add(plan.Operator{
			Name: "Scan " + rel.Name, Kind: plan.KindScan,
			RunCost: run, MatCost: mat, Rows: rel.Rows,
		})
	}
	l := addTree(p, t.Left, g, c)
	r := addTree(p, t.Right, g, c)
	run, mat := c.JoinCosts(t.Left.Card, t.Right.Card, t.Card)
	id := p.Add(plan.Operator{
		Name: "Join " + t.Render(g), Kind: plan.KindHashJoin,
		RunCost: run, MatCost: mat, Rows: t.Card,
	})
	p.MustConnect(l, id)
	p.MustConnect(r, id)
	return id
}

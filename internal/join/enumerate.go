package join

import (
	"fmt"
	"sort"
)

// Tree is a binary join tree. A leaf has Rel >= 0 and nil children; an inner
// node joins Left (build side) with Right (probe side).
type Tree struct {
	Rel         int // leaf relation index, or -1 for joins
	Left, Right *Tree
	// Card is the estimated output cardinality of this (sub-)tree.
	Card float64
	// Cost is the cumulative C_out cost: the sum of the output cardinalities
	// of all join nodes in the subtree — the classic cost function for
	// failure-free join ordering.
	Cost float64
	mask uint
}

// IsLeaf reports whether the node is a base relation.
func (t *Tree) IsLeaf() bool { return t.Rel >= 0 }

// Relations returns the number of leaves.
func (t *Tree) Relations() int {
	if t.IsLeaf() {
		return 1
	}
	return t.Left.Relations() + t.Right.Relations()
}

// String renders e.g. "((R ⨝ N) ⨝ C)".
func (t *Tree) String() string {
	return t.render(nil)
}

// Render names leaves via the graph's relation names.
func (t *Tree) Render(g *Graph) string { return t.render(g) }

func (t *Tree) render(g *Graph) string {
	if t.IsLeaf() {
		if g != nil && t.Rel < len(g.rels) {
			return g.rels[t.Rel].Name
		}
		return fmt.Sprintf("R%d", t.Rel)
	}
	return "(" + t.Left.render(g) + " JOIN " + t.Right.render(g) + ")"
}

func (g *Graph) leaf(i int) *Tree {
	return &Tree{Rel: i, Card: g.rels[i].Rows, mask: 1 << uint(i)}
}

func (g *Graph) joinNodes(l, r *Tree) *Tree {
	card := l.Card * r.Card * g.crossSelectivity(l.mask, r.mask)
	return &Tree{
		Rel:  -1,
		Left: l, Right: r,
		Card: card,
		Cost: l.Cost + r.Cost + card,
		mask: l.mask | r.mask,
	}
}

// subsetsOf iterates all non-empty proper subsets of mask.
func subsetsOf(mask uint, fn func(uint) bool) {
	for s := (mask - 1) & mask; s != 0; s = (s - 1) & mask {
		if !fn(s) {
			return
		}
	}
}

// EnumerateAll returns every ordered bushy join tree without cartesian
// products. The result size grows exponentially; Validate limits the graph to
// 30 relations, and callers should keep well below that for full enumeration
// (the paper enumerates 1344 orders for the six relations of TPC-H Q5).
func (g *Graph) EnumerateAll() ([]*Tree, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := uint(len(g.rels))
	full := uint(1)<<n - 1
	memo := make(map[uint][]*Tree)
	var build func(mask uint) []*Tree
	build = func(mask uint) []*Tree {
		if ts, ok := memo[mask]; ok {
			return ts
		}
		var out []*Tree
		if mask&(mask-1) == 0 {
			// Single relation.
			for i := uint(0); i < n; i++ {
				if mask == 1<<i {
					out = []*Tree{g.leaf(int(i))}
					break
				}
			}
		} else {
			subsetsOf(mask, func(s1 uint) bool {
				s2 := mask ^ s1
				if !g.connected(s1) || !g.connected(s2) || !g.joinable(s1, s2) {
					return true
				}
				for _, l := range build(s1) {
					for _, r := range build(s2) {
						out = append(out, g.joinNodes(l, r))
					}
				}
				return true
			})
		}
		memo[mask] = out
		return out
	}
	return build(full), nil
}

// CountOrders returns the number of ordered bushy join trees without
// cartesian products, without materializing them.
func (g *Graph) CountOrders() (int, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	n := uint(len(g.rels))
	full := uint(1)<<n - 1
	memo := make(map[uint]int)
	var count func(mask uint) int
	count = func(mask uint) int {
		if c, ok := memo[mask]; ok {
			return c
		}
		c := 0
		if mask&(mask-1) == 0 {
			c = 1
		} else {
			subsetsOf(mask, func(s1 uint) bool {
				s2 := mask ^ s1
				if g.connected(s1) && g.connected(s2) && g.joinable(s1, s2) {
					c += count(s1) * count(s2)
				}
				return true
			})
		}
		memo[mask] = c
		return c
	}
	return count(full), nil
}

// TopK returns the k cheapest join trees by C_out cost, ascending. It runs
// dynamic programming over connected subsets keeping the k best partial
// plans per subset — the approximate first phase of enumFTPlans ("use
// dynamic programming to find the top-k plans ordered ascending by their
// cost without mid-query failures").
func (g *Graph) TopK(k int) ([]*Tree, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("join: k must be positive, got %d", k)
	}
	n := uint(len(g.rels))
	full := uint(1)<<n - 1

	best := make(map[uint][]*Tree)
	for i := uint(0); i < n; i++ {
		best[1<<i] = []*Tree{g.leaf(int(i))}
	}

	// Enumerate subsets in increasing popcount order.
	masks := make([]uint, 0, full)
	for m := uint(1); m <= full; m++ {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool { return popcount(masks[i]) < popcount(masks[j]) })

	for _, mask := range masks {
		if mask&(mask-1) == 0 || !g.connected(mask) {
			continue
		}
		var cands []*Tree
		subsetsOf(mask, func(s1 uint) bool {
			s2 := mask ^ s1
			if !g.connected(s1) || !g.connected(s2) || !g.joinable(s1, s2) {
				return true
			}
			for _, l := range best[s1] {
				for _, r := range best[s2] {
					cands = append(cands, g.joinNodes(l, r))
				}
			}
			return true
		})
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].Cost < cands[j].Cost })
		if len(cands) > k {
			cands = cands[:k]
		}
		best[mask] = cands
	}
	out := best[full]
	if len(out) == 0 {
		return nil, fmt.Errorf("join: no plan found (graph disconnected?)")
	}
	return out, nil
}

func popcount(x uint) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

package cost

import "math"

// The expected-runtime formulas multiply long chains of probabilities and
// exponentials (paper §5), so exact float64 equality is meaningless and
// math.Exp/math.Log have domain cliffs that silently produce ±Inf/NaN. This
// file holds the sanctioned alternatives; the costfloat analyzer points every
// raw ==/!=/Exp/Log in the cost packages here.

// DefaultEpsilon is the tolerance ApproxEq uses: generous enough to absorb
// accumulated rounding across a plan-sized product of probabilities, tight
// enough to distinguish genuinely different costs.
const DefaultEpsilon = 1e-9

// maxExpArg is the largest argument math.Exp can take before overflowing to
// +Inf (ln(MaxFloat64) ≈ 709.78).
const maxExpArg = 709.0

// minLogArg floors SafeLog's argument: probabilities and times in the model
// are nonnegative, and a zero (or negative rounding artifact) would yield
// -Inf/NaN that then poisons every downstream sum.
const minLogArg = 1e-300

// ApproxEq reports whether two cost-model values are equal within
// DefaultEpsilon, absolutely for small magnitudes and relatively for large
// ones.
func ApproxEq(a, b float64) bool {
	return ApproxEqEps(a, b, DefaultEpsilon)
}

// ApproxEqEps is ApproxEq with an explicit tolerance.
func ApproxEqEps(a, b, eps float64) bool {
	//lint:ignore costfloat the epsilon helper is the one sanctioned exact-compare site (fast path for identical values, including ±Inf)
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= eps {
		return true
	}
	return diff <= eps*math.Max(math.Abs(a), math.Abs(b))
}

// SafeExp is math.Exp with the argument clamped to the representable domain:
// huge positive arguments saturate at math.Exp(maxExpArg) instead of +Inf,
// and huge negative ones underflow cleanly to 0.
func SafeExp(x float64) float64 {
	if x > maxExpArg {
		x = maxExpArg
	}
	//lint:ignore costfloat the Safe* wrapper is the one sanctioned raw call site
	return math.Exp(x)
}

// SafeLog is math.Log with the argument floored at minLogArg, so nonpositive
// inputs (zero probabilities, negative rounding artifacts) yield a large
// negative value instead of -Inf/NaN.
func SafeLog(x float64) float64 {
	if x < minLogArg {
		x = minLogArg
	}
	//lint:ignore costfloat the Safe* wrapper is the one sanctioned raw call site
	return math.Log(x)
}

package cost

import (
	"fmt"
	"sort"
	"strings"

	"ftpde/internal/plan"
)

// Collapsed is a collapsed plan P^c (paper Section 3.3): every operator that
// does not materialize its output is folded into the next materializing
// consumer(s). A collapsed operator is the granularity of re-execution — once
// it has materialized its output it never needs to re-run.
type Collapsed struct {
	// P is the collapsed plan itself: one operator per collapsed group, with
	// RunCost = tr(c) (Eq. 1), MatCost = tm(c), Materialize = whether the
	// group's root materializes.
	P *plan.Plan
	// Source is the original plan the collapse was derived from.
	Source *plan.Plan
	// Root maps each collapsed operator (ID in P) to the original operator
	// that terminates the group (the materializing operator or a sink).
	Root map[plan.OpID]plan.OpID
	// Members maps each collapsed operator to coll(c), the original
	// operators folded into it, sorted by ID.
	Members map[plan.OpID][]plan.OpID
	// Dominant maps each collapsed operator to dom(c), the longest execution
	// path (by tr) inside the group, ending at the root.
	Dominant map[plan.OpID][]plan.OpID
	// ByRoot maps an original root operator ID to the collapsed operator ID.
	ByRoot map[plan.OpID]plan.OpID
}

// Collapse builds the collapsed plan for p under its current materialization
// configuration. Roots are the operators with m(o) = 1 plus all sinks (a
// query's final results are consumed even if not spooled to fault-tolerant
// storage; they still delimit re-execution of downstream work because there
// is none).
func Collapse(p *plan.Plan, m Model) (*Collapsed, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}

	isRoot := make(map[plan.OpID]bool)
	for _, op := range p.Operators() {
		if op.Materialize {
			isRoot[op.ID] = true
		}
	}
	for _, s := range p.Sinks() {
		isRoot[s] = true
	}

	var roots []plan.OpID
	for _, id := range p.OperatorIDs() {
		if isRoot[id] {
			roots = append(roots, id)
		}
	}

	c := &Collapsed{
		P:        plan.New(),
		Source:   p,
		Root:     make(map[plan.OpID]plan.OpID),
		Members:  make(map[plan.OpID][]plan.OpID),
		Dominant: make(map[plan.OpID][]plan.OpID),
		ByRoot:   make(map[plan.OpID]plan.OpID),
	}

	// For each root, gather coll(root): the root plus every non-root
	// ancestor reachable through non-root operators only.
	memberSets := make(map[plan.OpID]map[plan.OpID]bool, len(roots))
	for _, r := range roots {
		members := map[plan.OpID]bool{r: true}
		var up func(plan.OpID)
		up = func(id plan.OpID) {
			for _, pa := range p.Inputs(id) {
				if isRoot[pa] || members[pa] {
					continue
				}
				members[pa] = true
				up(pa)
			}
		}
		up(r)
		memberSets[r] = members
	}

	// Longest execution path inside the group ending at the root, weighted
	// by tr(o); memoized per group.
	for _, r := range roots {
		members := memberSets[r]
		longest := make(map[plan.OpID]float64)
		pred := make(map[plan.OpID]plan.OpID)
		var walk func(plan.OpID) float64
		walk = func(id plan.OpID) float64 {
			if v, ok := longest[id]; ok {
				return v
			}
			best := 0.0
			bestPa := plan.OpID(0)
			for _, pa := range p.Inputs(id) {
				if !members[pa] || isRoot[pa] {
					continue
				}
				if v := walk(pa); bestPa == 0 || v > best {
					best = v
					bestPa = pa
				}
			}
			total := best + p.Op(id).RunCost
			longest[id] = total
			if bestPa != 0 {
				pred[id] = bestPa
			}
			return total
		}
		domLen := walk(r)

		var domPath []plan.OpID
		for id := r; ; {
			domPath = append([]plan.OpID{id}, domPath...)
			pa, ok := pred[id]
			if !ok {
				break
			}
			id = pa
		}

		rootOp := p.Op(r)
		tr := domLen * m.PipeConst
		tm := 0.0
		if rootOp.Materialize {
			tm = rootOp.MatCost
		}
		sortedMembers := make([]plan.OpID, 0, len(members))
		for id := range members {
			sortedMembers = append(sortedMembers, id)
		}
		sort.Slice(sortedMembers, func(i, j int) bool { return sortedMembers[i] < sortedMembers[j] })

		cid := c.P.Add(plan.Operator{
			Name:        groupName(sortedMembers),
			Kind:        rootOp.Kind,
			RunCost:     tr,
			MatCost:     tm,
			Materialize: rootOp.Materialize,
		})
		c.Root[cid] = r
		c.ByRoot[r] = cid
		c.Members[cid] = sortedMembers
		c.Dominant[cid] = domPath
	}

	// Edges between collapsed operators: root r1 feeds group of r2 when some
	// member of coll(r2) consumes r1's output in the original plan.
	type edge struct{ from, to plan.OpID }
	seen := make(map[edge]bool)
	for _, r2 := range roots {
		cid2 := c.ByRoot[r2]
		for _, member := range c.Members[cid2] {
			for _, pa := range p.Inputs(member) {
				if !isRoot[pa] {
					continue
				}
				// pa is a root feeding this group. Skip the degenerate case
				// where pa is the group's own root (can't happen: roots have
				// no members besides themselves upstream).
				cid1 := c.ByRoot[pa]
				if cid1 == cid2 {
					continue
				}
				e := edge{cid1, cid2}
				if !seen[e] {
					seen[e] = true
					c.P.MustConnect(cid1, cid2)
				}
			}
		}
	}

	// A collapsed plan may legitimately consist of multiple disconnected
	// groups (e.g. no-mat with several sinks), so only check acyclicity.
	if _, err := c.P.TopoOrder(); err != nil {
		return nil, fmt.Errorf("cost: collapsed plan invalid: %w", err)
	}
	return c, nil
}

func groupName(members []plan.OpID) string {
	parts := make([]string, len(members))
	for i, id := range members {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// OpByMembers returns the collapsed operator whose member set is exactly ids
// (order-insensitive), or 0 if none matches. Intended for tests and tools.
func (c *Collapsed) OpByMembers(ids ...plan.OpID) plan.OpID {
	want := append([]plan.OpID(nil), ids...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for cid, members := range c.Members {
		if len(members) != len(want) {
			continue
		}
		match := true
		for i := range members {
			if members[i] != want[i] {
				match = false
				break
			}
		}
		if match {
			return cid
		}
	}
	return 0
}

// Total returns t(c) for the collapsed operator with ID cid.
func (c *Collapsed) Total(cid plan.OpID) float64 {
	return c.P.Op(cid).TotalCost()
}

// Package cost implements the cost model of the cost-based fault-tolerance
// scheme (Section 3 of Salama et al., SIGMOD'15): collapsed-plan
// construction, per-operator runtime estimation under mid-query failures
// (wasted runtime, attempts for a target success percentile), execution-path
// costs and dominant-path selection.
package cost

import (
	"fmt"

	"ftpde/internal/failure"
	"ftpde/internal/plan"
)

// Model carries the statistics and constants the cost function needs
// (paper Listing 1, getCostStats): cluster MTBF/MTTR transformed to cost
// units, the target success percentile S, and CONSTpipe.
type Model struct {
	// MTBF is MTBFcost = MTBF * CONSTcost, the per-node mean time between
	// failures in cost units.
	MTBF float64
	// MTTR is MTTRcost, the mean time to repair (redeploy a sub-plan).
	MTTR float64
	// Percentile is S, the desired cumulative probability of success used to
	// size the number of attempts (paper: 0.95).
	Percentile float64
	// PipeConst is CONSTpipe in (0,1]: discounts the runtime of a collapsed
	// operator to reflect pipeline parallelism inside the collapsed sub-plan.
	// The paper calibrates it per engine; its XDB calibration yields 1.0.
	PipeConst float64
	// Nodes is the number of cluster nodes executing the plan. It is used by
	// pruning rule 2 (high probability of success), which requires the
	// collapsed operator to finish without failure on any node; 0 means 1.
	Nodes int
	// ExactWasted selects the exact Equation 3 for w(c) instead of the t/2
	// approximation of Equation 4 the paper uses. Kept for ablation.
	ExactWasted bool
	// RecoveryStretch scales the recovery-time terms w(c) and MTTR to price
	// recomputation against a loaded shared worker pool instead of an idle
	// cluster (set via UnderLoad; see load.go). Zero and 1 both mean
	// unscaled, keeping the zero value paper-faithful.
	RecoveryStretch float64
	// ClusterAware is an extension beyond the paper: it divides the MTBF by
	// the node count when estimating failure probabilities and attempts,
	// reflecting that a partition-parallel operator is delayed when any of
	// the n nodes fails. The paper's formulas use the per-node MTBF
	// directly (and consequently underestimate runtimes at low MTBFs, its
	// Figure 12a); this flag trades paper fidelity for accuracy.
	ClusterAware bool
}

// effMTBF returns the MTBF used for probability estimates.
func (m Model) effMTBF() float64 {
	if m.ClusterAware && m.Nodes > 1 {
		return m.MTBF / float64(m.Nodes)
	}
	return m.MTBF
}

// DefaultModel returns a model with the paper's evaluation constants
// (S = 0.95, CONSTpipe = 1, CONSTcost = 1) for the given cluster.
func DefaultModel(spec failure.Spec) Model {
	return Model{
		MTBF:       spec.MTBF,
		MTTR:       spec.MTTR,
		Percentile: failure.DefaultPercentile,
		PipeConst:  1.0,
		Nodes:      spec.Nodes,
	}
}

// Validate reports whether the model parameters are usable.
func (m Model) Validate() error {
	if m.MTBF <= 0 {
		return fmt.Errorf("cost: MTBF must be positive, got %g", m.MTBF)
	}
	if m.MTTR < 0 {
		return fmt.Errorf("cost: MTTR must be non-negative, got %g", m.MTTR)
	}
	if m.Percentile <= 0 || m.Percentile >= 1 {
		return fmt.Errorf("cost: percentile must be in (0,1), got %g", m.Percentile)
	}
	if m.PipeConst <= 0 || m.PipeConst > 1 {
		return fmt.Errorf("cost: CONSTpipe must be in (0,1], got %g", m.PipeConst)
	}
	if m.Nodes < 0 {
		return fmt.Errorf("cost: nodes must be non-negative, got %d", m.Nodes)
	}
	if m.RecoveryStretch < 0 {
		return fmt.Errorf("cost: recovery stretch must be non-negative, got %g", m.RecoveryStretch)
	}
	return nil
}

// OpCost is the per-collapsed-operator cost breakdown of Table 2.
type OpCost struct {
	// Total is t(c) = tr(c) + tm(c)*m(c).
	Total float64
	// Wasted is w(c), the expected runtime lost per failure (Eq. 3/4).
	Wasted float64
	// Gamma is the per-attempt success probability (Eq. 5 context).
	Gamma float64
	// Attempts is a(c), additional attempts to reach the percentile (Eq. 6).
	Attempts float64
	// Runtime is T(c) = t(c) + a(c)*w(c) + a(c)*MTTR (Eq. 8).
	Runtime float64
}

// OperatorCost evaluates the failure-aware runtime of one collapsed operator
// with total cost t (Equations 4, 5, 6 and 8).
func (m Model) OperatorCost(t float64) OpCost {
	mtbf := m.effMTBF()
	var w float64
	if m.ExactWasted {
		w = failure.WastedRuntimeExact(t, mtbf)
	} else {
		w = failure.WastedRuntimeApprox(t)
	}
	// Under shared-pool contention every recovery runs stretched: the lost
	// work and the repair both take longer when they compete for workers.
	if m.RecoveryStretch > 1 {
		w *= m.RecoveryStretch
	}
	mttr := m.MTTR
	if m.RecoveryStretch > 1 {
		mttr *= m.RecoveryStretch
	}
	gamma := failure.ProbSuccess(t, mtbf)
	a := failure.Attempts(t, mtbf, m.Percentile)
	return OpCost{
		Total:    t,
		Wasted:   w,
		Gamma:    gamma,
		Attempts: a,
		Runtime:  t + a*w + a*mttr,
	}
}

// PathCost aggregates the cost of one execution path through a collapsed
// plan.
type PathCost struct {
	// Path holds the collapsed-operator IDs (IDs in the collapsed plan).
	Path []plan.OpID
	// RunCost is RPt = sum of t(c), the path runtime without failures.
	RunCost float64
	// Runtime is TPt = sum of T(c), the path runtime under failures (Eq. 7).
	Runtime float64
	// Ops holds the per-operator breakdown aligned with Path.
	Ops []OpCost
}

// CostPath evaluates Equations 7/8 for one path of a collapsed plan.
func (m Model) CostPath(c *Collapsed, path plan.Path) PathCost {
	pc := PathCost{Path: append([]plan.OpID(nil), path...)}
	for _, id := range path {
		oc := m.OperatorCost(c.P.Op(id).TotalCost())
		pc.Ops = append(pc.Ops, oc)
		pc.RunCost += oc.Total
		pc.Runtime += oc.Runtime
	}
	return pc
}

// Estimate collapses p under its current materialization configuration and
// returns the dominant path cost (the maximal TPt over all source-to-sink
// paths of the collapsed plan) together with all path costs.
func (m Model) Estimate(p *plan.Plan) (dominant PathCost, all []PathCost, err error) {
	c, err := Collapse(p, m)
	if err != nil {
		return PathCost{}, nil, err
	}
	dom, all := m.EstimateCollapsed(c)
	return dom, all, nil
}

// EstimateCollapsed scores every execution path of an already-collapsed plan
// and returns the dominant one.
func (m Model) EstimateCollapsed(c *Collapsed) (dominant PathCost, all []PathCost) {
	for _, path := range c.P.Paths() {
		pc := m.CostPath(c, path)
		all = append(all, pc)
		if pc.Runtime > dominant.Runtime {
			dominant = pc
		}
	}
	return dominant, all
}

// EstimateRuntime is a convenience that returns only the dominant TPt.
func (m Model) EstimateRuntime(p *plan.Plan) (float64, error) {
	dom, _, err := m.Estimate(p)
	if err != nil {
		return 0, err
	}
	return dom.Runtime, nil
}

package cost

import (
	"testing"
)

func TestCheckpointedCostValidation(t *testing.T) {
	m := Model{MTBF: 100, MTTR: 1, Percentile: 0.95, PipeConst: 1}
	if _, err := m.CheckpointedCost(10, 0, 1); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := m.CheckpointedCost(10, 5, -1); err == nil {
		t.Error("negative checkpoint cost accepted")
	}
	oc, err := m.CheckpointedCost(0, 5, 1)
	if err != nil || !ApproxEq(oc.Runtime, 0) {
		t.Errorf("zero work should cost nothing: %+v, %v", oc, err)
	}
}

func TestCheckpointingHelpsLongOperators(t *testing.T) {
	// Operator twice as long as the MTBF: without checkpointing the retry
	// cost explodes; with segments it shrinks dramatically.
	m := Model{MTBF: 100, MTTR: 1, Percentile: 0.95, PipeConst: 1}
	whole := m.OperatorCost(200).Runtime
	seg, err := m.CheckpointedCost(200, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Runtime >= whole {
		t.Errorf("checkpointed runtime %g should beat whole-operator %g", seg.Runtime, whole)
	}
}

func TestCheckpointingHurtsShortOperators(t *testing.T) {
	// Operator far below the MTBF: checkpoints are pure overhead.
	m := Model{MTBF: 1e6, MTTR: 1, Percentile: 0.95, PipeConst: 1}
	whole := m.OperatorCost(10).Runtime
	seg, err := m.CheckpointedCost(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Runtime <= whole {
		t.Errorf("checkpointing a safe operator should add cost: %g <= %g", seg.Runtime, whole)
	}
}

func TestBestCheckpointInterval(t *testing.T) {
	m := Model{MTBF: 100, MTTR: 1, Percentile: 0.95, PipeConst: 1}
	// Long operator: some interval must win.
	interval, runtime, err := m.BestCheckpointInterval(300, 0.5, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ApproxEq(interval, 0) {
		t.Error("long operator should benefit from checkpointing")
	}
	if runtime >= m.OperatorCost(300).Runtime {
		t.Error("best checkpointed runtime should beat the whole operator")
	}
	// Short operator: none should win.
	interval, _, err = m.BestCheckpointInterval(1, 0.5, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEq(interval, 0) {
		t.Errorf("short operator picked interval %g, want none", interval)
	}
	if _, _, err := m.BestCheckpointInterval(10, 0.5, 1); err == nil {
		t.Error("maxSegments < 2 accepted")
	}
}

func TestClusterAwareModel(t *testing.T) {
	base := Model{MTBF: 1000, MTTR: 1, Percentile: 0.95, PipeConst: 1, Nodes: 10}
	aware := base
	aware.ClusterAware = true
	// Cluster-aware estimates must never be lower: n nodes fail n times as
	// often.
	for _, tt := range []float64{1, 50, 200, 1000} {
		b := base.OperatorCost(tt).Runtime
		a := aware.OperatorCost(tt).Runtime
		if a < b-1e-9 {
			t.Errorf("t=%g: cluster-aware %g < per-node %g", tt, a, b)
		}
	}
	// With one node both agree.
	one := base
	one.Nodes = 1
	oneAware := one
	oneAware.ClusterAware = true
	if !ApproxEq(one.OperatorCost(100).Runtime, oneAware.OperatorCost(100).Runtime) {
		t.Error("single-node cluster-aware should equal per-node")
	}
}

package cost

// Load-aware costing: the paper prices the recovery terms w(c) and
// a(c)·MTTR as if the cluster were idle, but in a multi-tenant service a
// failed query's recomputation competes with every other tenant for the same
// worker pool. UnderLoad scales the price of recovery by observed pool
// utilization, so the optimizer picks more materialization when the service
// is hot — the per-query what-if accounting of "Providing Insights for
// Queries affected by Failures and Stragglers" (arXiv 2002.01531) applied at
// plan time.

// maxLoadUtil caps the utilization fed into the stretch so a saturated (or
// oversubscribed) pool prices recovery at a finite multiple instead of
// diverging at rho -> 1.
const maxLoadUtil = 0.95

// LoadStretch returns the multiplier applied to recovery-time terms at pool
// utilization util: the M/M/1-style delay factor 1/(1-rho), clamped to
// [0, maxLoadUtil] so the stretch stays within [1, 20]. At an idle pool the
// stretch is exactly 1 and the model reduces to the paper's.
func LoadStretch(util float64) float64 {
	if util <= 0 {
		return 1
	}
	if util > maxLoadUtil {
		util = maxLoadUtil
	}
	return 1 / (1 - util)
}

// UnderLoad returns a copy of m pricing recovery against a cluster at the
// given pool utilization (busy plus queued workers over capacity; values
// above 1 are clamped). The per-attempt wasted runtime w(c) and the repair
// time MTTR are both stretched by LoadStretch(util): a recomputation that
// needs k workers on a pool with spare capacity costs its nominal runtime,
// but on a contended pool it steals capacity from other tenants and takes —
// and wastes — proportionally longer. Failure *probabilities* (gamma, a(c))
// are unchanged: load does not make nodes fail more often, it makes each
// failure more expensive.
func (m Model) UnderLoad(util float64) Model {
	m.RecoveryStretch = LoadStretch(util)
	return m
}

package cost

import (
	"testing"

	"ftpde/internal/plan"
)

// Collapse invariants on random DAGs: every original operator belongs to at
// least one collapsed group; every group's members can actually reach the
// group's root through non-materialized operators; group totals are
// consistent with Equation 1.
func TestCollapseInvariantsOnRandomDAGs(t *testing.T) {
	m := Model{MTBF: 50, MTTR: 1, Percentile: 0.95, PipeConst: 0.9}
	for seed := int64(0); seed < 100; seed++ {
		p := plan.RandomDAG(seed, 12)
		c, err := Collapse(p, m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		covered := map[plan.OpID]bool{}
		for cid, members := range c.Members {
			root := c.Root[cid]
			rootOp := p.Op(root)
			if !rootOp.Materialize && len(p.Outputs(root)) != 0 {
				t.Fatalf("seed %d: group root %d neither materializes nor is a sink", seed, root)
			}
			memberSet := map[plan.OpID]bool{}
			for _, id := range members {
				covered[id] = true
				memberSet[id] = true
				if id != root && p.Op(id).Materialize {
					t.Fatalf("seed %d: materialized operator %d folded into group of %d", seed, id, root)
				}
			}
			if !memberSet[root] {
				t.Fatalf("seed %d: root %d missing from its own group", seed, root)
			}
			// Dominant path lies inside the group and ends at the root.
			dom := c.Dominant[cid]
			if len(dom) == 0 || dom[len(dom)-1] != root {
				t.Fatalf("seed %d: dominant path of %d does not end at root", seed, root)
			}
			domTr := 0.0
			for _, id := range dom {
				if !memberSet[id] {
					t.Fatalf("seed %d: dominant path leaves the group", seed)
				}
				domTr += p.Op(id).RunCost
			}
			// Equation 1: tr(c) = sum over dom(c) * CONSTpipe.
			if got := c.P.Op(cid).RunCost; !almostEqual(got, domTr*m.PipeConst, 1e-9) {
				t.Fatalf("seed %d: tr(c)=%g != dominant %g * pipe", seed, got, domTr*m.PipeConst)
			}
		}
		for _, op := range p.Operators() {
			if !covered[op.ID] {
				t.Fatalf("seed %d: operator %d not covered by any collapsed group", seed, op.ID)
			}
		}
		// The collapsed plan has exactly one group per root.
		roots := 0
		for _, op := range p.Operators() {
			if op.Materialize || len(p.Outputs(op.ID)) == 0 {
				roots++
			}
		}
		if c.P.Len() != roots {
			t.Fatalf("seed %d: %d groups for %d roots", seed, c.P.Len(), roots)
		}
	}
}

// Materializing one more operator never increases any collapsed group's
// total below it; more precisely, the failure-free makespan of the collapsed
// plan (sum along any path) equals or exceeds the plan's critical path.
func TestCollapsedPathAtLeastCriticalPath(t *testing.T) {
	m := Model{MTBF: 50, MTTR: 1, Percentile: 0.95, PipeConst: 1}
	for seed := int64(0); seed < 50; seed++ {
		p := plan.RandomDAG(seed, 10)
		c, err := Collapse(p, m)
		if err != nil {
			t.Fatal(err)
		}
		// For every path in the collapsed plan, its run cost without
		// failures must be at least the tr of the original dominant chain it
		// represents (materialization only adds cost).
		for _, path := range c.P.Paths() {
			sum := 0.0
			trOnly := 0.0
			for _, cid := range path {
				sum += c.P.Op(cid).TotalCost()
				trOnly += c.P.Op(cid).RunCost
			}
			if sum < trOnly-1e-9 {
				t.Fatalf("seed %d: materialization made a path cheaper", seed)
			}
		}
	}
}

package cost

import (
	"math"
	"testing"
	"testing/quick"

	"ftpde/internal/plan"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// TestTable2 reproduces the worked example of paper Table 2 with exact
// arithmetic. The paper computes a({1,2,3}) from the *rounded* gamma = 0.94,
// reporting 0.0648 and T = 4.13; exact arithmetic yields 0.0928 and T = 4.19.
// We assert the exact values and the paper values within the rounding delta.
func TestTable2(t *testing.T) {
	m := paperModel() // MTBF=60, MTTR=0, S=0.95
	c, err := Collapse(plan.PaperExample(), m)
	if err != nil {
		t.Fatal(err)
	}

	type row struct {
		members  []plan.OpID
		total    float64
		wasted   float64
		gamma    float64
		attempts float64
		runtime  float64
	}
	rows := []row{
		{[]plan.OpID{1, 2, 3}, 4, 2, 0.94, 0.0928, 4.1857},
		{[]plan.OpID{4, 5}, 3, 1.5, 0.95, 0, 3},
		{[]plan.OpID{6}, 1, 0.5, 0.98, 0, 1},
		{[]plan.OpID{7}, 2, 1, 0.96, 0, 2},
	}
	for _, r := range rows {
		cid := c.OpByMembers(r.members...)
		oc := m.OperatorCost(c.Total(cid))
		if !ApproxEq(oc.Total, r.total) {
			t.Errorf("t(%v) = %g, want %g", r.members, oc.Total, r.total)
		}
		if !ApproxEq(oc.Wasted, r.wasted) {
			t.Errorf("w(%v) = %g, want %g", r.members, oc.Wasted, r.wasted)
		}
		if !almostEqual(oc.Gamma, r.gamma, 0.0101) {
			t.Errorf("gamma(%v) = %g, want ~%g", r.members, oc.Gamma, r.gamma)
		}
		if !almostEqual(oc.Attempts, r.attempts, 0.001) {
			t.Errorf("a(%v) = %g, want ~%g", r.members, oc.Attempts, r.attempts)
		}
		if !almostEqual(oc.Runtime, r.runtime, 0.001) {
			t.Errorf("T(%v) = %g, want ~%g", r.members, oc.Runtime, r.runtime)
		}
	}

	// TPt1 (path ending at {6}) and TPt2 (ending at {7}); the paper reports
	// 8.13 and 9.13 from the rounded attempts, exact values are 8.19/9.19.
	dom, all := m.EstimateCollapsed(c)
	if len(all) != 2 {
		t.Fatalf("want 2 paths, got %d", len(all))
	}
	var tp1, tp2 float64
	for _, pc := range all {
		last := pc.Path[len(pc.Path)-1]
		switch c.Root[last] {
		case 6:
			tp1 = pc.Runtime
		case 7:
			tp2 = pc.Runtime
		}
	}
	if !almostEqual(tp1, 8.1857, 0.001) {
		t.Errorf("TPt1 = %g, want ~8.186 (paper: 8.13 w/ rounded gamma)", tp1)
	}
	if !almostEqual(tp2, 9.1857, 0.001) {
		t.Errorf("TPt2 = %g, want ~9.186 (paper: 9.13 w/ rounded gamma)", tp2)
	}
	// Pt2 is the dominant path.
	if c.Root[dom.Path[len(dom.Path)-1]] != 7 {
		t.Errorf("dominant path should end at operator 7, got %v", dom.Path)
	}
	if !ApproxEq(dom.Runtime, tp2) {
		t.Errorf("dominant runtime = %g, want %g", dom.Runtime, tp2)
	}
}

func TestOperatorCostNoFailureRegime(t *testing.T) {
	// With an enormous MTBF no attempts are needed: T(c) = t(c).
	m := Model{MTBF: 1e12, MTTR: 10, Percentile: 0.95, PipeConst: 1}
	oc := m.OperatorCost(100)
	if !ApproxEq(oc.Attempts, 0) {
		t.Errorf("attempts = %g, want 0", oc.Attempts)
	}
	if !ApproxEq(oc.Runtime, 100) {
		t.Errorf("runtime = %g, want 100", oc.Runtime)
	}
}

func TestOperatorCostHighFailureRegime(t *testing.T) {
	// Operator runtime far above MTBF: many attempts, runtime balloons, and
	// MTTR is paid per attempt.
	m := Model{MTBF: 10, MTTR: 5, Percentile: 0.95, PipeConst: 1}
	oc := m.OperatorCost(100)
	if oc.Attempts < 10 {
		t.Errorf("attempts = %g, want >= 10", oc.Attempts)
	}
	wantMin := 100 + oc.Attempts*50 + oc.Attempts*5 - 1e-9
	if oc.Runtime < wantMin {
		t.Errorf("runtime = %g, want >= %g", oc.Runtime, wantMin)
	}
}

func TestExactWastedAblation(t *testing.T) {
	approx := Model{MTBF: 60, MTTR: 0, Percentile: 0.95, PipeConst: 1}
	exact := approx
	exact.ExactWasted = true
	// For t << MTBF the two agree closely; exact is always <= t/2.
	for _, tt := range []float64{1, 5, 30, 60, 200} {
		wa := approx.OperatorCost(tt).Wasted
		we := exact.OperatorCost(tt).Wasted
		if we > wa+1e-9 {
			t.Errorf("exact wasted %g exceeds t/2 %g at t=%g", we, wa, tt)
		}
	}
	// And they diverge for t >> MTBF.
	if we := exact.OperatorCost(600).Wasted; we > 60 {
		t.Errorf("exact wasted at t=10*MTBF should approach MTBF, got %g", we)
	}
}

func TestEstimateRuntimeMonotoneInMTBF(t *testing.T) {
	// Lower MTBF must never decrease the estimated runtime.
	p := plan.PaperExample()
	prev := math.Inf(1)
	for _, mtbf := range []float64{10, 30, 60, 600, 1e6} {
		m := Model{MTBF: mtbf, MTTR: 1, Percentile: 0.95, PipeConst: 1}
		got, err := m.EstimateRuntime(p)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev+1e-9 {
			t.Errorf("estimate increased with MTBF: %g at MTBF=%g (prev %g)", got, mtbf, prev)
		}
		prev = got
	}
}

func TestEstimateAtLeastFailureFreeRuntime(t *testing.T) {
	// Property: TPt >= RPt for every path, for arbitrary materialization
	// configurations of the example plan.
	p := plan.PaperExample()
	free := p.FreeOperators()
	m := Model{MTBF: 30, MTTR: 2, Percentile: 0.95, PipeConst: 1}
	f := func(mask uint64) bool {
		q := p.Clone()
		if err := q.Apply(plan.ConfigFromMask(free, mask%(1<<uint(len(free))))); err != nil {
			return false
		}
		_, all, err := m.Estimate(q)
		if err != nil {
			return false
		}
		for _, pc := range all {
			if pc.Runtime < pc.RunCost-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDominantPathIsMaximal(t *testing.T) {
	p := plan.PaperExample()
	m := Model{MTBF: 20, MTTR: 1, Percentile: 0.95, PipeConst: 1}
	dom, all, err := m.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range all {
		if pc.Runtime > dom.Runtime {
			t.Errorf("path %v has runtime %g > dominant %g", pc.Path, pc.Runtime, dom.Runtime)
		}
	}
}

func TestCostPathBreakdownAligned(t *testing.T) {
	p := plan.PaperExample()
	m := paperModel()
	c, err := Collapse(p, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range c.P.Paths() {
		pc := m.CostPath(c, path)
		if len(pc.Ops) != len(pc.Path) {
			t.Fatalf("breakdown misaligned: %d ops for %d path entries", len(pc.Ops), len(pc.Path))
		}
		sumR, sumT := 0.0, 0.0
		for _, oc := range pc.Ops {
			sumR += oc.Total
			sumT += oc.Runtime
		}
		if !almostEqual(sumR, pc.RunCost, 1e-9) || !almostEqual(sumT, pc.Runtime, 1e-9) {
			t.Error("path aggregates do not match per-op sums")
		}
	}
}

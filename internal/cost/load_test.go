package cost

import (
	"testing"

	"ftpde/internal/failure"
)

func TestLoadStretch(t *testing.T) {
	cases := []struct {
		util, want float64
	}{
		{-1, 1},    // negative utilization is treated as idle
		{0, 1},     // idle pool: paper-faithful costs
		{0.5, 2},   // half busy: recovery takes twice as long
		{0.9, 10},  // hot: 10x
		{0.95, 20}, // clamp boundary
		{1, 20},    // saturated: clamped
		{3, 20},    // oversubscribed (waiters beyond capacity): clamped
	}
	for _, c := range cases {
		if got := LoadStretch(c.util); !ApproxEqEps(got, c.want, 1e-9) {
			t.Errorf("LoadStretch(%g) = %g, want %g", c.util, got, c.want)
		}
	}
}

func testModel() Model {
	return Model{MTBF: 100, MTTR: 1, Percentile: 0.95, PipeConst: 1, Nodes: 4}
}

func TestUnderLoadScalesRecoveryOnly(t *testing.T) {
	m := testModel()
	idle := m.OperatorCost(10)
	hot := m.UnderLoad(0.9).OperatorCost(10)

	// Failure statistics are load-independent: load does not make nodes
	// fail more often.
	if !ApproxEqEps(hot.Gamma, idle.Gamma, 1e-12) {
		t.Errorf("gamma changed under load: %g vs %g", hot.Gamma, idle.Gamma)
	}
	if !ApproxEqEps(hot.Attempts, idle.Attempts, 1e-12) {
		t.Errorf("attempts changed under load: %g vs %g", hot.Attempts, idle.Attempts)
	}
	if !ApproxEqEps(hot.Total, idle.Total, 1e-12) {
		t.Errorf("clean runtime changed under load: %g vs %g", hot.Total, idle.Total)
	}
	// Recovery prices stretch by exactly LoadStretch(0.9) = 10.
	if !ApproxEqEps(hot.Wasted, 10*idle.Wasted, 1e-9) {
		t.Errorf("wasted = %g, want 10x idle %g", hot.Wasted, idle.Wasted)
	}
	wantRuntime := idle.Total + idle.Attempts*10*idle.Wasted + idle.Attempts*10*m.MTTR
	if !ApproxEqEps(hot.Runtime, wantRuntime, 1e-9) {
		t.Errorf("runtime = %g, want %g", hot.Runtime, wantRuntime)
	}
}

func TestUnderLoadIdleIsIdentity(t *testing.T) {
	m := testModel()
	idle := m.OperatorCost(10)
	alsoIdle := m.UnderLoad(0).OperatorCost(10)
	if !ApproxEqEps(idle.Runtime, alsoIdle.Runtime, 1e-12) {
		t.Errorf("UnderLoad(0) changed runtime: %g vs %g", alsoIdle.Runtime, idle.Runtime)
	}
}

func TestUnderLoadValidate(t *testing.T) {
	m := testModel().UnderLoad(0.9)
	if err := m.Validate(); err != nil {
		t.Errorf("UnderLoad model invalid: %v", err)
	}
	m.RecoveryStretch = -1
	if err := m.Validate(); err == nil {
		t.Error("negative RecoveryStretch passed Validate")
	}
}

func TestDefaultModelUnstretched(t *testing.T) {
	// The zero RecoveryStretch must be paper-faithful: DefaultModel costs
	// are unchanged by the field's introduction.
	m := DefaultModel(failure.Spec{MTBF: 100, MTTR: 1, Nodes: 4})
	oc := m.OperatorCost(10)
	want := oc.Total + oc.Attempts*oc.Wasted + oc.Attempts*m.MTTR
	if !ApproxEqEps(oc.Runtime, want, 1e-12) {
		t.Errorf("zero-stretch runtime = %g, want %g", oc.Runtime, want)
	}
}

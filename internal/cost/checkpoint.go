package cost

import (
	"fmt"
	"math"
)

// CheckpointedCost models intra-operator state checkpointing — the extension
// the paper sketches as future work ("check-pointing of the operator state
// to also support mid-operator failures ... helpful especially for long
// running operators which otherwise are likely to fail often").
//
// The operator's work t is split into ceil(t/interval) segments; after each
// segment the operator state is checkpointed at cost cpCost, and a failure
// only loses the current segment. Each segment is costed with the regular
// per-operator model (Equations 4-8) and the segment runtimes are summed.
func (m Model) CheckpointedCost(t, interval, cpCost float64) (OpCost, error) {
	if t <= 0 {
		return OpCost{}, nil
	}
	if interval <= 0 {
		return OpCost{}, fmt.Errorf("cost: checkpoint interval must be positive, got %g", interval)
	}
	if cpCost < 0 {
		return OpCost{}, fmt.Errorf("cost: checkpoint cost must be non-negative, got %g", cpCost)
	}
	segments := int(math.Ceil(t / interval))
	total := OpCost{}
	remaining := t
	for s := 0; s < segments; s++ {
		seg := math.Min(interval, remaining)
		remaining -= seg
		segWork := seg + cpCost
		oc := m.OperatorCost(segWork)
		total.Total += oc.Total
		total.Wasted += oc.Wasted * oc.Attempts // accumulated expected loss
		total.Attempts += oc.Attempts
		total.Runtime += oc.Runtime
	}
	// Gamma of the whole chain: product of per-segment success probabilities
	// for a single pass (informational).
	segWork := math.Min(interval, t) + cpCost
	gammaSeg := m.OperatorCost(segWork).Gamma
	total.Gamma = math.Pow(gammaSeg, float64(segments))
	return total, nil
}

// BestCheckpointInterval sweeps candidate intervals (t/2, t/4, ..., down to
// minSegments splits) and returns the interval minimizing the estimated
// runtime, or 0 when no checkpointing beats running the operator whole.
func (m Model) BestCheckpointInterval(t, cpCost float64, maxSegments int) (bestInterval, bestRuntime float64, err error) {
	if maxSegments < 2 {
		return 0, 0, fmt.Errorf("cost: maxSegments must be at least 2, got %d", maxSegments)
	}
	bestRuntime = m.OperatorCost(t).Runtime
	bestInterval = 0
	for k := 2; k <= maxSegments; k *= 2 {
		interval := t / float64(k)
		oc, cerr := m.CheckpointedCost(t, interval, cpCost)
		if cerr != nil {
			return 0, 0, cerr
		}
		if oc.Runtime < bestRuntime {
			bestRuntime = oc.Runtime
			bestInterval = interval
		}
	}
	return bestInterval, bestRuntime, nil
}

package cost

import (
	"math"
	"testing"

	"ftpde/internal/failure"
	"ftpde/internal/plan"
)

func paperModel() Model {
	return Model{MTBF: 60, MTTR: 0, Percentile: 0.95, PipeConst: 1.0}
}

func TestCollapsePaperExample(t *testing.T) {
	p := plan.PaperExample()
	c, err := Collapse(p, paperModel())
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3 step 2: collapsed operators {1,2,3}, {4,5}, {6}, {7}.
	if c.P.Len() != 4 {
		t.Fatalf("want 4 collapsed operators, got %d", c.P.Len())
	}
	groups := [][]plan.OpID{{1, 2, 3}, {4, 5}, {6}, {7}}
	wantTotals := []float64{4, 3, 1, 2} // Table 2 t(c)
	for i, g := range groups {
		cid := c.OpByMembers(g...)
		if cid == 0 {
			t.Fatalf("collapsed operator %v not found", g)
		}
		if got := c.Total(cid); !ApproxEq(got, wantTotals[i]) {
			t.Errorf("t(%v) = %g, want %g", g, got, wantTotals[i])
		}
	}
	// Dominant path of {1,2,3} is {2,3} because tr(2)=1.5 >= tr(1)=1.
	dom := c.Dominant[c.OpByMembers(1, 2, 3)]
	if len(dom) != 2 || dom[0] != 2 || dom[1] != 3 {
		t.Errorf("dom({1,2,3}) = %v, want [2 3]", dom)
	}
	// tm({1,2,3}) = tm(3) = 0.5.
	if got := c.P.Op(c.OpByMembers(1, 2, 3)).MatCost; !ApproxEq(got, 0.5) {
		t.Errorf("tm({1,2,3}) = %g, want 0.5", got)
	}
	// Collapsed-plan paths: {1,2,3}->{4,5}->{6} and ->{7}.
	paths := c.P.Paths()
	if len(paths) != 2 {
		t.Fatalf("want 2 collapsed paths, got %d", len(paths))
	}
}

func TestCollapseEdges(t *testing.T) {
	p := plan.PaperExample()
	c, err := Collapse(p, paperModel())
	if err != nil {
		t.Fatal(err)
	}
	g123 := c.OpByMembers(1, 2, 3)
	g45 := c.OpByMembers(4, 5)
	g6 := c.OpByMembers(6)
	g7 := c.OpByMembers(7)
	outs := c.P.Outputs(g123)
	if len(outs) != 1 || outs[0] != g45 {
		t.Errorf("outputs({1,2,3}) = %v, want [%d]", outs, g45)
	}
	outs = c.P.Outputs(g45)
	if len(outs) != 2 {
		t.Errorf("outputs({4,5}) = %v, want two sinks", outs)
	}
	if len(c.P.Outputs(g6)) != 0 || len(c.P.Outputs(g7)) != 0 {
		t.Error("sinks must have no outputs")
	}
}

func TestCollapseAllMat(t *testing.T) {
	// With every operator materialized, the collapsed plan is isomorphic to
	// the original plan.
	p := plan.PaperExample()
	if err := p.Apply(plan.AllMat(p)); err != nil {
		t.Fatal(err)
	}
	c, err := Collapse(p, paperModel())
	if err != nil {
		t.Fatal(err)
	}
	if c.P.Len() != p.Len() {
		t.Fatalf("all-mat collapse has %d ops, want %d", c.P.Len(), p.Len())
	}
	for cid, members := range c.Members {
		if len(members) != 1 {
			t.Errorf("collapsed op %d has %d members, want 1", cid, len(members))
		}
	}
	// t(c) = tr(o) + tm(o) for each singleton group.
	for cid, members := range c.Members {
		orig := p.Op(members[0])
		if got, want := c.Total(cid), orig.RunCost+orig.MatCost; !ApproxEq(got, want) {
			t.Errorf("t({%d}) = %g, want %g", members[0], got, want)
		}
	}
}

func TestCollapseNoMat(t *testing.T) {
	// With nothing materialized, each sink becomes one collapsed operator
	// containing the whole upstream sub-plan.
	p := plan.PaperExample()
	if err := p.Apply(plan.NoMat(p)); err != nil {
		t.Fatal(err)
	}
	c, err := Collapse(p, paperModel())
	if err != nil {
		t.Fatal(err)
	}
	if c.P.Len() != 2 {
		t.Fatalf("no-mat collapse has %d ops, want 2 (one per sink)", c.P.Len())
	}
	g6 := c.OpByMembers(1, 2, 3, 4, 5, 6)
	g7 := c.OpByMembers(1, 2, 3, 4, 5, 7)
	if g6 == 0 || g7 == 0 {
		t.Fatalf("expected full-lineage groups, got %v", c.Members)
	}
	// Sinks do not materialize here, so tm(c) = 0 and t(c) = tr(c).
	// Dominant path to 6: 2->3->4->5->6 with tr = 1.5+2+1+1.5+0.8 = 6.8.
	if got := c.Total(g6); !ApproxEq(got, 6.8) {
		t.Errorf("t(sink 6 group) = %g, want 6.8", got)
	}
	if got := c.Total(g7); !ApproxEq(got, 7.7) {
		t.Errorf("t(sink 7 group) = %g, want 7.7", got)
	}
}

func TestCollapsePipeConst(t *testing.T) {
	// Figure 5 example (left): tr({o,p}) = (2+2)*0.8 = 3.2, tm = 1.
	p := plan.New()
	o := p.Add(plan.Operator{Name: "o", RunCost: 2, MatCost: 10})
	pp := p.Add(plan.Operator{Name: "p", RunCost: 2, MatCost: 1, Materialize: true})
	p.MustConnect(o, pp)
	m := paperModel()
	m.PipeConst = 0.8
	c, err := Collapse(p, m)
	if err != nil {
		t.Fatal(err)
	}
	cid := c.OpByMembers(o, pp)
	if cid == 0 {
		t.Fatal("expected {o,p} group")
	}
	op := c.P.Op(cid)
	if !ApproxEq(op.RunCost, 3.2) {
		t.Errorf("tr({o,p}) = %g, want 3.2", op.RunCost)
	}
	if !ApproxEq(op.MatCost, 1) {
		t.Errorf("tm({o,p}) = %g, want 1", op.MatCost)
	}
	if got := c.Total(cid); !ApproxEq(got, 4.2) {
		t.Errorf("t({o,p}) = %g, want 4.2", got)
	}
}

func TestCollapseNaryPipeConst(t *testing.T) {
	// Figure 5 example (right): {o1,o2,p} with tr = (2+4)*0.8 = 4.8, tm = 1.
	p := plan.New()
	o1 := p.Add(plan.Operator{Name: "o1", RunCost: 2, MatCost: 10})
	o2 := p.Add(plan.Operator{Name: "o2", RunCost: 4, MatCost: 5})
	pp := p.Add(plan.Operator{Name: "p", RunCost: 2, MatCost: 1, Materialize: true})
	p.MustConnect(o1, pp)
	p.MustConnect(o2, pp)
	m := paperModel()
	m.PipeConst = 0.8
	c, err := Collapse(p, m)
	if err != nil {
		t.Fatal(err)
	}
	cid := c.OpByMembers(o1, o2, pp)
	if cid == 0 {
		t.Fatal("expected {o1,o2,p} group")
	}
	if got := c.P.Op(cid).RunCost; math.Abs(got-4.8) > 1e-9 {
		t.Errorf("tr = %g, want 4.8 (dominant path o2,p)", got)
	}
	if got := c.Total(cid); math.Abs(got-5.8) > 1e-9 {
		t.Errorf("t = %g, want 5.8", got)
	}
	dom := c.Dominant[cid]
	if len(dom) != 2 || dom[0] != o2 || dom[1] != pp {
		t.Errorf("dominant path = %v, want [o2 p]", dom)
	}
}

func TestCollapseSharedSubplanDAG(t *testing.T) {
	// A diamond: one pipelined producer consumed by two materializing
	// consumers. The producer must appear in both collapsed groups (it is
	// re-executed for whichever group fails).
	p := plan.New()
	src := p.Add(plan.Operator{Name: "src", RunCost: 1, MatCost: 1})
	l := p.Add(plan.Operator{Name: "left", RunCost: 2, MatCost: 1, Materialize: true})
	r := p.Add(plan.Operator{Name: "right", RunCost: 3, MatCost: 1, Materialize: true})
	top := p.Add(plan.Operator{Name: "top", RunCost: 1, MatCost: 1})
	p.MustConnect(src, l)
	p.MustConnect(src, r)
	p.MustConnect(l, top)
	p.MustConnect(r, top)
	c, err := Collapse(p, paperModel())
	if err != nil {
		t.Fatal(err)
	}
	if c.OpByMembers(src, l) == 0 {
		t.Error("src not folded into left group")
	}
	if c.OpByMembers(src, r) == 0 {
		t.Error("src not folded into right group")
	}
	if c.OpByMembers(top) == 0 {
		t.Error("top should be its own (sink) group")
	}
	cTop := c.OpByMembers(top)
	if ins := c.P.Inputs(cTop); len(ins) != 2 {
		t.Errorf("top group should have 2 inputs, got %d", len(ins))
	}
}

func TestCollapseInvalidInputs(t *testing.T) {
	p := plan.New() // empty
	if _, err := Collapse(p, paperModel()); err == nil {
		t.Error("empty plan accepted")
	}
	good := plan.PaperExample()
	bad := paperModel()
	bad.MTBF = 0
	if _, err := Collapse(good, bad); err == nil {
		t.Error("invalid model accepted")
	}
	bad2 := paperModel()
	bad2.PipeConst = 1.5
	if _, err := Collapse(good, bad2); err == nil {
		t.Error("CONSTpipe > 1 accepted")
	}
	bad3 := paperModel()
	bad3.Percentile = 1
	if _, err := Collapse(good, bad3); err == nil {
		t.Error("percentile = 1 accepted")
	}
}

func TestModelValidate(t *testing.T) {
	if err := DefaultModel(failure.Spec{Nodes: 10, MTBF: 3600, MTTR: 1}).Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
	if err := (Model{MTBF: 1, MTTR: -1, Percentile: 0.9, PipeConst: 1}).Validate(); err == nil {
		t.Error("negative MTTR accepted")
	}
}

// SQL pipeline: the full loop from query text to fault-tolerant execution.
// A SQL query is parsed, statistics are collected from the data, the cost
// planner produces a plan DAG, the paper's optimizer picks the checkpoints
// for the cluster at hand — and the same query then runs on the row-level
// engine with an injected node failure, recovering to the exact
// failure-free result.
package main

import (
	"fmt"
	"log"

	"ftpde/internal/core"
	"ftpde/internal/cost"
	"ftpde/internal/engine"
	"ftpde/internal/failure"
	"ftpde/internal/sql"
	"ftpde/internal/stats"
	"ftpde/internal/tpch"
)

const query = `
	SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
	FROM nation
	JOIN supplier ON n_nationkey = s_nationkey
	JOIN lineitem ON s_suppkey = l_suppkey
	WHERE l_shipdate < 1500
	GROUP BY n_name
	ORDER BY revenue DESC
	LIMIT 5`

func main() {
	const nodes = 4
	cat, err := tpch.Generate(0.005, nodes, 7)
	if err != nil {
		log.Fatal(err)
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Statistics and cost plan.
	tstats, err := sql.CollectStats(cat, []string{"nation", "supplier", "lineitem"})
	if err != nil {
		log.Fatal(err)
	}
	costPlan, err := sql.CostPlan(stmt, cat, tstats,
		stats.CostParams{CPUPerRow: 1e-4, WritePerRow: 1.7e-3, Nodes: nodes})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The paper's optimizer decides the checkpoints.
	spec := failure.Spec{Nodes: nodes, MTBF: failure.OneHour, MTTR: 1}
	res, err := core.Optimize(costPlan, core.Options{Model: cost.DefaultModel(spec)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost plan: %d operators, %d free\n", costPlan.Len(), len(costPlan.FreeOperators()))
	fmt.Printf("cost-based checkpoints on %s: %s (estimated %.2fs under failures)\n\n",
		spec, res.Config, res.Runtime)

	// 3. Execute on the engine: clean run, then a run with the first join
	// materialized and a node killed mid-join.
	clean, err := sql.Compile(stmt, cat)
	if err != nil {
		log.Fatal(err)
	}
	co := &engine.Coordinator{Nodes: nodes}
	cleanRes, _, err := co.Execute(clean.Root)
	if err != nil {
		log.Fatal(err)
	}

	failed, err := sql.Compile(stmt, cat)
	if err != nil {
		log.Fatal(err)
	}
	for _, j := range failed.Joins {
		j.SetMaterialize(true)
	}
	co2 := &engine.Coordinator{
		Nodes:    nodes,
		Injector: engine.NewScriptedFailures().Add("join-2", 1, 0),
	}
	gotRes, rep, err := co2.Execute(failed.Root)
	if err != nil {
		log.Fatal(err)
	}

	want, got := cleanRes.AllRows(), gotRes.AllRows()
	if len(want) != len(got) {
		log.Fatalf("recovery changed the result: %d vs %d rows", len(want), len(got))
	}
	fmt.Printf("injected 1 node failure; %d partitions recomputed, %d persisted; result verified\n\n",
		rep.RecomputedPartitions, rep.MaterializedPartitions)
	fmt.Println("top supplier nations by revenue:")
	for _, r := range got {
		fmt.Printf("  %-12s %14.2f\n", r[0], r[1])
	}
}

// Quickstart: build a DAG-structured execution plan, run the cost-based
// fault-tolerance optimizer for a given cluster, and inspect which
// intermediates it decides to checkpoint.
package main

import (
	"fmt"
	"log"

	"ftpde/internal/core"
	"ftpde/internal/cost"
	"ftpde/internal/failure"
	"ftpde/internal/plan"
)

func main() {
	// A small ETL-style pipeline: two scans feeding a join, an expensive
	// UDF, and a final aggregation. Costs are in seconds, accumulated over
	// partition-parallel execution; MatCost is the price of writing the
	// operator's output to fault-tolerant storage.
	p := plan.New()
	scanA := p.Add(plan.Operator{Name: "scan events", Kind: plan.KindScan, RunCost: 120, MatCost: 300, Bound: true})
	scanB := p.Add(plan.Operator{Name: "scan users", Kind: plan.KindScan, RunCost: 30, MatCost: 60, Bound: true})
	join := p.Add(plan.Operator{Name: "join on user_id", Kind: plan.KindHashJoin, RunCost: 200, MatCost: 80})
	udf := p.Add(plan.Operator{Name: "enrich UDF", Kind: plan.KindMapUDF, RunCost: 400, MatCost: 25})
	agg := p.Add(plan.Operator{Name: "sessionize", Kind: plan.KindAggregate, RunCost: 150, MatCost: 5, Bound: true})
	p.MustConnect(scanA, join)
	p.MustConnect(scanB, join)
	p.MustConnect(join, udf)
	p.MustConnect(udf, agg)

	// Optimize the same plan for three cluster profiles.
	for _, cluster := range []failure.Spec{
		{Nodes: 10, MTBF: failure.OneWeek, MTTR: 2},  // reliable on-prem rack
		{Nodes: 10, MTBF: failure.OneHour, MTTR: 2},  // flaky commodity nodes
		{Nodes: 100, MTBF: failure.OneHour, MTTR: 2}, // large spot-market fleet
	} {
		model := cost.DefaultModel(cluster)
		res, err := core.Optimize(p, core.Options{Model: model})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", cluster)
		fmt.Printf("  checkpoint operators: %s\n", res.Config)
		fmt.Printf("  estimated runtime under failures: %.1fs\n", res.Runtime)
		fmt.Printf("  probability a 900s query finishes with zero failures here: %.1f%%\n\n",
			100*failure.ProbClusterSuccess(900, cluster.MTBF, cluster.Nodes))
	}
}

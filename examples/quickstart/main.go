// Quickstart: build a DAG-structured execution plan, run the cost-based
// fault-tolerance optimizer for a given cluster, inspect which intermediates
// it decides to checkpoint — then execute an analogous query for real on the
// engine, with a live injected node failure, under either the concurrent
// pipelined runtime (-runtime=pipelined) or the staged interpreter
// (-runtime=staged).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"ftpde/internal/core"
	"ftpde/internal/cost"
	"ftpde/internal/engine"
	"ftpde/internal/failure"
	"ftpde/internal/plan"
	"ftpde/internal/runtime"
)

func main() {
	rt := flag.String("runtime", "pipelined", "execution runtime for the live demo: pipelined or staged")
	flag.Parse()

	// A small ETL-style pipeline: two scans feeding a join, an expensive
	// UDF, and a final aggregation. Costs are in seconds, accumulated over
	// partition-parallel execution; MatCost is the price of writing the
	// operator's output to fault-tolerant storage.
	p := plan.New()
	scanA := p.Add(plan.Operator{Name: "scan events", Kind: plan.KindScan, RunCost: 120, MatCost: 300, Bound: true})
	scanB := p.Add(plan.Operator{Name: "scan users", Kind: plan.KindScan, RunCost: 30, MatCost: 60, Bound: true})
	join := p.Add(plan.Operator{Name: "join on user_id", Kind: plan.KindHashJoin, RunCost: 200, MatCost: 80})
	udf := p.Add(plan.Operator{Name: "enrich UDF", Kind: plan.KindMapUDF, RunCost: 400, MatCost: 25})
	agg := p.Add(plan.Operator{Name: "sessionize", Kind: plan.KindAggregate, RunCost: 150, MatCost: 5, Bound: true})
	p.MustConnect(scanA, join)
	p.MustConnect(scanB, join)
	p.MustConnect(join, udf)
	p.MustConnect(udf, agg)

	// Optimize the same plan for three cluster profiles.
	for _, cluster := range []failure.Spec{
		{Nodes: 10, MTBF: failure.OneWeek, MTTR: 2},  // reliable on-prem rack
		{Nodes: 10, MTBF: failure.OneHour, MTTR: 2},  // flaky commodity nodes
		{Nodes: 100, MTBF: failure.OneHour, MTTR: 2}, // large spot-market fleet
	} {
		model := cost.DefaultModel(cluster)
		res, err := core.Optimize(p, core.Options{Model: model})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", cluster)
		fmt.Printf("  checkpoint operators: %s\n", res.Config)
		fmt.Printf("  estimated runtime under failures: %.1fs\n", res.Runtime)
		fmt.Printf("  probability a 900s query finishes with zero failures here: %.1f%%\n\n",
			100*failure.ProbClusterSuccess(900, cluster.MTBF, cluster.Nodes))
	}

	// Now run the executable analogue of that pipeline on real rows: scan
	// events, join against users, enrich, aggregate per user — with the join
	// checkpointed (the optimizer's choice on flaky clusters) and a node
	// failure injected live into the enrichment stage.
	const nodes = 4
	events := make([]engine.Row, 2000)
	for i := range events {
		events[i] = engine.Row{int64(i % 50), float64(i % 97)}
	}
	users := make([]engine.Row, 50)
	for i := range users {
		users[i] = engine.Row{int64(i), fmt.Sprintf("user-%02d", i)}
	}
	evT, err := engine.NewTable("events",
		engine.Schema{{Name: "user_id", Type: engine.TypeInt}, {Name: "amount", Type: engine.TypeFloat}},
		events, nodes, 0)
	if err != nil {
		log.Fatal(err)
	}
	usT, err := engine.NewTable("users",
		engine.Schema{{Name: "id", Type: engine.TypeInt}, {Name: "name", Type: engine.TypeString}},
		users, nodes, 0)
	if err != nil {
		log.Fatal(err)
	}
	scanEv := engine.NewScan("scan-events", evT, nil, nil)
	scanUs := engine.NewScan("scan-users", usT, nil, nil)
	j := engine.NewHashJoin("join-user", scanUs, scanEv, 0, 0)
	j.SetMaterialize(true) // the optimizer's pick: cheap to write, saves the UDF re-run
	enrich := engine.NewProject("enrich-udf", j,
		[]engine.Expr{engine.Col(3), engine.Arith{Op: engine.Mul, L: engine.Col(1), R: engine.Const{V: 1.07}}},
		engine.Schema{{Name: "name", Type: engine.TypeString}, {Name: "taxed", Type: engine.TypeFloat}})
	sess := engine.NewHashAggregate("sessionize", enrich, []int{0},
		[]engine.AggSpec{{Kind: engine.AggSum, Col: 1}, {Kind: engine.AggCount}},
		true,
		engine.Schema{{Name: "name", Type: engine.TypeString}, {Name: "total", Type: engine.TypeFloat}, {Name: "events", Type: engine.TypeInt}})

	inj := engine.NewScriptedFailures().Add("enrich-udf", 1, 0)
	var (
		result *engine.PartitionedResult
		rep    *engine.Report
	)
	switch *rt {
	case "pipelined":
		r, err := runtime.New(runtime.Config{Nodes: nodes, Injector: inj, BatchSize: 64})
		if err != nil {
			log.Fatal(err)
		}
		result, rep, err = r.Execute(context.Background(), sess)
		if err != nil {
			log.Fatal(err)
		}
		defer fmt.Printf("\npipelined runtime metrics: %s\n", r.Metrics().Snapshot())
	case "staged":
		co := &engine.Coordinator{Nodes: nodes, Injector: inj}
		result, rep, err = co.Execute(sess)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -runtime %q (want pipelined or staged)", *rt)
	}

	rows := result.AllRows()
	fmt.Printf("live run on the %s runtime: %d user sessions, %d failure(s) injected and recovered, %d partition(s) recomputed, %d checkpointed\n",
		*rt, len(rows), rep.Failures, rep.RecomputedPartitions, rep.MaterializedPartitions)
	for i, r := range rows {
		if i >= 3 {
			fmt.Printf("  ... (%d more)\n", len(rows)-3)
			break
		}
		fmt.Printf("  %v\n", r)
	}
}

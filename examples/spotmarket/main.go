// Spot market: the paper's "cluster 1" setting — a large fleet of cheap,
// unreliable nodes (IaaS spot instances with n=100 and MTBF around an hour).
// Even short queries rarely finish without a failure there (paper Figure 1),
// so the optimizer checkpoints aggressively; the same query on a small
// reliable cluster gets no checkpoints at all.
//
// The example sweeps TPC-H Q5's materialization configuration choice across
// cluster profiles and prints how the chosen checkpoints, their
// materialization overhead, and the estimated runtime shift.
package main

import (
	"fmt"
	"log"

	"ftpde/internal/core"
	"ftpde/internal/cost"
	"ftpde/internal/failure"
	"ftpde/internal/tpch"
)

func main() {
	q, err := tpch.Q5(tpch.Params{SF: 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-H Q5 @ SF100, baseline %.0fs; free operators: %v\n\n",
		q.Baseline, q.Plan.FreeOperators())

	profiles := []struct {
		name string
		spec failure.Spec
	}{
		{"small reliable rack", failure.Spec{Nodes: 10, MTBF: failure.OneWeek, MTTR: 1}},
		{"commodity cluster", failure.Spec{Nodes: 10, MTBF: failure.OneDay, MTTR: 1}},
		{"flaky commodity cluster", failure.Spec{Nodes: 10, MTBF: failure.OneHour, MTTR: 1}},
		{"spot-market fleet", failure.Spec{Nodes: 100, MTBF: failure.OneHour, MTTR: 1}},
	}

	fmt.Printf("%-26s %-22s %-14s %-12s %s\n", "cluster", "checkpoints", "mat. cost (s)", "est. (s)", "P(no failure)")
	for _, pr := range profiles {
		model := cost.DefaultModel(pr.spec)
		res, err := core.Optimize(q.Plan, core.Options{Model: model})
		if err != nil {
			log.Fatal(err)
		}
		matCost := 0.0
		for _, id := range res.Config.Materialized() {
			matCost += q.Plan.Op(id).MatCost
		}
		pSuccess := failure.ProbClusterSuccess(q.Baseline, pr.spec.MTBF, pr.spec.Nodes)
		fmt.Printf("%-26s %-22s %-14.1f %-12.1f %.2f%%\n",
			pr.name, res.Config.String(), matCost, res.Runtime, 100*pSuccess)
	}

	fmt.Println("\nMore failures per query-second => more (and cheaper) checkpoints chosen.")
}

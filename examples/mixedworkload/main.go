// Mixed workload: the paper's motivating scenario. An analytical workload
// mixes short interactive queries with long batch queries; no static
// fault-tolerance scheme (materialize everything / nothing) fits both, while
// the cost-based scheme finds the sweet spot per query and per cluster.
//
// This example runs TPC-H Q3 (short, SF=10) and Q5 (long, SF=1000) on two
// cluster profiles and reports the simulated overhead of each scheme.
package main

import (
	"fmt"
	"log"

	"ftpde/internal/experiments"
	"ftpde/internal/failure"
	"ftpde/internal/schemes"
	"ftpde/internal/tpch"
)

func main() {
	type workload struct {
		name  string
		build func(tpch.Params) (*tpch.Query, error)
		sf    float64
	}
	workloads := []workload{
		{"interactive (Q3 @ SF10)", tpch.Q3, 10},
		{"batch (Q5 @ SF1000)", tpch.Q5, 1000},
	}
	clusters := []failure.Spec{
		{Nodes: 10, MTBF: failure.OneWeek, MTTR: 1},
		{Nodes: 10, MTBF: failure.OneHour, MTTR: 1},
	}

	for _, cl := range clusters {
		fmt.Printf("=== %s ===\n", cl)
		for _, w := range workloads {
			q, err := w.build(tpch.Params{SF: w.sf, Nodes: cl.Nodes})
			if err != nil {
				log.Fatal(err)
			}
			traces := failure.NewTraces(cl, 500*q.Baseline, 42, 10)
			fmt.Printf("%-26s baseline %7.1fs |", w.name, q.Baseline)
			best, bestOv := "", 0.0
			for _, k := range schemes.All() {
				mean, aborted, err := experiments.SchemeOverhead(q, k, cl, traces)
				if err != nil {
					log.Fatal(err)
				}
				cell := fmt.Sprintf("%.0f%%", mean)
				if aborted {
					cell = "abort"
				} else if best == "" || mean < bestOv {
					best, bestOv = k.String(), mean
				}
				fmt.Printf(" %s %s |", k, cell)
			}
			fmt.Printf("  -> best: %s\n", best)
		}
		fmt.Println()
	}
	fmt.Println("The cost-based scheme matches the best static scheme in every cell —")
	fmt.Println("no single static strategy does (that is the paper's Figure 8/10/11 story).")
}

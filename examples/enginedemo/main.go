// Engine demo: run TPC-H Q3 on the real row-level execution engine with an
// injected mid-query node failure, and watch fine-grained recovery restore
// the lost partitions — from the materialization store where available, via
// lineage recomputation otherwise. The recovered result is verified against
// a failure-free run.
package main

import (
	"fmt"
	"log"
	"math"

	"ftpde/internal/engine"
	"ftpde/internal/tpch"
)

func main() {
	const (
		sf      = 0.005
		nodes   = 4
		segment = "BUILDING"
		dateMax = int64(1200)
	)
	cat, err := tpch.Generate(sf, nodes, 7)
	if err != nil {
		log.Fatal(err)
	}
	li, _ := cat.Table("lineitem")
	fmt.Printf("generated TPC-H @ SF%g: %d lineitem rows across %d nodes\n\n", sf, li.Rows(), nodes)

	// Reference run without failures.
	clean, err := tpch.EngineQ3(cat, segment, dateMax, false)
	if err != nil {
		log.Fatal(err)
	}
	co := &engine.Coordinator{Nodes: nodes}
	cleanRes, _, err := co.Execute(clean)
	if err != nil {
		log.Fatal(err)
	}

	// Same query with the joins materialized to the fault-tolerant store and
	// two injected failures: node 1 dies while joining lineitem, node 0 dies
	// during the final aggregation.
	q, err := tpch.EngineQ3(cat, segment, dateMax, true)
	if err != nil {
		log.Fatal(err)
	}
	co2 := &engine.Coordinator{
		Nodes: nodes,
		Injector: engine.NewScriptedFailures().
			Add("q3-join-orders-lineitem", 1, 0).
			Add("q3-agg", 0, 0),
	}
	res, rep, err := co2.Execute(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("injected failures handled:    %d\n", rep.Failures)
	fmt.Printf("partitions recomputed:        %d (lineage walk)\n", rep.RecomputedPartitions)
	fmt.Printf("partitions persisted to FT store: %d\n", rep.MaterializedPartitions)

	// Verify the recovered result matches the clean run.
	a, b := cleanRes.AllRows(), res.AllRows()
	if len(a) != len(b) {
		log.Fatalf("row count mismatch after recovery: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i][0] != b[i][0] || math.Abs(a[i][1].(float64)-b[i][1].(float64)) > 1e-6 {
			log.Fatalf("row %d differs after recovery", i)
		}
	}
	fmt.Printf("result verified: %d orders, identical to the failure-free run\n\n", len(b))

	fmt.Println("top orders by revenue:")
	for i, r := range b {
		if i == 5 {
			break
		}
		fmt.Printf("  order %6d  revenue %12.2f\n", r[0], r[1])
	}
}

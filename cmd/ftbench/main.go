// Command ftbench regenerates the tables and figures of "Cost-based
// Fault-tolerance for Parallel Data Processing" (SIGMOD'15) on the simulated
// cluster substrate.
//
// Usage:
//
//	ftbench -list
//	ftbench -exp all
//	ftbench -exp fig8a -traces 20 -seed 7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ftpde/internal/experiments"
	"ftpde/internal/obs"
	"ftpde/internal/obs/metrics"
	"ftpde/internal/obs/prof"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see -list), 'all' (paper exhibits), 'extras' (ablations/extensions), or 'everything'")
		list     = flag.Bool("list", false, "list available experiments")
		nodes    = flag.Int("nodes", 10, "cluster size")
		traces   = flag.Int("traces", 10, "failure traces per MTBF")
		seed     = flag.Int64("seed", 1, "trace generation seed")
		sf       = flag.Float64("sf", 100, "TPC-H scale factor for fixed-scale experiments")
		debug    = flag.String("debug-addr", "", "serve live experiment progress and pprof on this address during the run")
		traceOut = flag.String("trace-out", "", "write the per-experiment timing timeline to this file in Chrome trace_event format")
		metOut   = flag.String("metrics-out", "", "write the final metrics registry snapshot to this file as JSON")
		profDir  = flag.String("profile-dir", "", "continuous profiling: rotate windowed CPU profiles into a crash-safe ring in this directory during the run")
		profWin  = flag.Duration("profile-window", 0, "continuous profiling window length (memory-only when set without -profile-dir; default 5s)")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Everything() {
			fmt.Printf("%-20s %s\n", r.ID, r.Desc)
		}
		return
	}

	cfg := experiments.Config{Nodes: *nodes, Traces: *traces, Seed: *seed, SF: *sf}
	var runners []experiments.Runner
	switch *exp {
	case "all":
		runners = experiments.All()
	case "extras":
		runners = experiments.Extras()
	case "everything":
		runners = experiments.Everything()
	default:
		r, err := experiments.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}
	var tracer *obs.Tracer
	if *debug != "" || *traceOut != "" || *metOut != "" {
		tracer = obs.NewTracer(obs.DefaultCapacity)
	}
	done := 0
	reg := metrics.NewRegistry()
	obs.RegisterTraceMetrics(reg, tracer)
	var sampler *prof.Sampler
	if *profDir != "" || *profWin > 0 {
		var perr error
		sampler, perr = prof.New(prof.Config{Dir: *profDir, Window: *profWin})
		if perr == nil {
			perr = sampler.Start()
		}
		if perr != nil {
			fmt.Fprintln(os.Stderr, perr)
			os.Exit(1)
		}
		prof.RegisterSamplerMetrics(reg, sampler)
	}
	reg.MustRegisterFunc(metrics.Desc{
		Name: "ftpde_experiments_done", Kind: metrics.KindGauge,
		Help: "Experiments completed so far in this ftbench run.",
	}, func() []metrics.Sample {
		return []metrics.Sample{{Value: float64(done)}}
	})
	if *debug != "" {
		srv, err := obs.StartDebug(*debug, tracer, func() any {
			return map[string]any{"experiments_total": len(runners), "experiments_done": done}
		}, reg, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ftbench: debug server on http://%s/debug/vars\n", srv.Addr())
	}

	for _, r := range runners {
		start := time.Now()
		sp := tracer.Begin(obs.KindStage, r.ID, -1, -1)
		tbl, err := r.Run(cfg)
		if err != nil {
			sp.Fail(err.Error())
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, err)
			os.Exit(1)
		}
		sp.End()
		done++
		fmt.Println(tbl)
		fmt.Printf("(%s regenerated in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	if sampler != nil {
		sampler.Stop()
		fmt.Fprintf(os.Stderr, "ftbench: %s\n", sampler.Summary())
	}
	if *traceOut != "" {
		if err := obs.WriteChromeTraceFile(*traceOut, tracer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ftbench: wrote Chrome trace to %s\n", *traceOut)
	}
	if *metOut != "" {
		data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
		if err == nil {
			err = os.WriteFile(*metOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ftbench: wrote metrics snapshot to %s\n", *metOut)
	}
}

// Calibration closes the paper's open loop: Section 3 assumes MTBF, MTTR,
// tr(o) and tm(o) are known inputs to findBestFTPlan. Here ftsql measures
// them — it executes TPC-H-shaped queries under an injected Poisson failure
// process, fits the failure log and the per-operator audit rows with
// stats/calibrate, and re-plans with the calibrated model to show how the
// materialization choice moves.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"ftpde/internal/cost"
	"ftpde/internal/engine"
	"ftpde/internal/failure"
	"ftpde/internal/obs"
	"ftpde/internal/obs/metrics"
	"ftpde/internal/obs/prof"
	"ftpde/internal/runtime"
	"ftpde/internal/sql"
	"ftpde/internal/stats"
	"ftpde/internal/stats/calibrate"
	"ftpde/internal/tpch"
)

// calibrateQueries are the TPC-H shapes the loop executes: Q1 (scan +
// aggregate), Q3 (3-way join) and a Q5-like 6-way join — the same spread of
// plan depths the paper's experiments cover.
var calibrateQueries = []struct{ name, text string }{
	{"Q1", `
		SELECT l_returnflag, l_linestatus,
		       SUM(l_quantity) AS sum_qty,
		       SUM(l_extendedprice) AS sum_price,
		       COUNT(*) AS cnt
		FROM lineitem
		WHERE l_shipdate <= 1200
		GROUP BY l_returnflag, l_linestatus`},
	{"Q3", `
		SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue
		FROM customer
		JOIN orders ON c_custkey = o_custkey
		JOIN lineitem ON o_orderkey = l_orderkey
		WHERE c_mktsegment = 'BUILDING' AND o_orderdate < 1200
		GROUP BY l_orderkey
		ORDER BY revenue DESC`},
	{"Q5", `
		SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
		FROM region
		JOIN nation ON r_regionkey = n_regionkey
		JOIN supplier ON n_nationkey = s_nationkey
		JOIN lineitem ON s_suppkey = l_suppkey
		JOIN orders ON l_orderkey = o_orderkey
		JOIN customer ON o_custkey = c_custkey
		GROUP BY n_name
		ORDER BY revenue DESC`},
}

type calibrateOptions struct {
	SF     float64
	Nodes  int
	Seed   int64
	Runs   int     // rounds of Q1/Q3/Q5 to execute
	MTBF   float64 // injected per-node MTBF, seconds
	Window float64 // failure-log horizon for the MTBF fit, seconds
	TopK   int     // join orders enumerated when re-planning
}

// queryDelta is the before/after of one query's re-planning.
type queryDelta struct {
	Name        string  `json:"name"`
	BaseConfig  string  `json:"base_config"`
	CalConfig   string  `json:"calibrated_config"`
	BaseRuntime float64 `json:"base_runtime"`
	CalRuntime  float64 `json:"calibrated_runtime"`
	Changed     bool    `json:"changed"`
}

type calibrateResult struct {
	Injected  float64                `json:"injected_mtbf"`
	Estimate  calibrate.MTBFEstimate `json:"mtbf_estimate"`
	MTTR      float64                `json:"mttr"`
	MTTRCount int                    `json:"mttr_samples"`
	TRFactor  float64                `json:"tr_factor"`
	TMFactor  float64                `json:"tm_factor"`
	Model     cost.Model             `json:"model"`
	Params    stats.CostParams       `json:"params"`
	Failures  int                    `json:"failures"`
	Wasted    float64                `json:"wasted_seconds"`
	Queries   []queryDelta           `json:"queries"`

	summary string
}

// runCalibrate executes the calibration loop and returns everything the
// report (and the tests) need.
func runCalibrate(o calibrateOptions) (*calibrateResult, error) {
	if o.Runs < 1 {
		o.Runs = 1
	}
	if o.TopK < 1 {
		o.TopK = 3
	}
	if o.MTBF <= 0 {
		return nil, fmt.Errorf("calibrate: injected MTBF must be positive, got %g", o.MTBF)
	}
	cat, err := tpch.Generate(o.SF, o.Nodes, o.Seed)
	if err != nil {
		return nil, err
	}

	// The uncalibrated prior: the defaults every other ftsql mode starts from.
	cp := stats.CostParams{CPUPerRow: 1e-6, WritePerRow: 1.7e-5, Nodes: o.Nodes}
	base := cost.Model{MTBF: failure.OneHour, MTTR: 1, Percentile: 0.95, PipeConst: 1, Nodes: o.Nodes}

	est := calibrate.New(o.Nodes)
	inj := engine.NewPoissonFailures(o.MTBF, o.Nodes, o.Seed)
	// The injector's schedule is the cluster failure log — what a production
	// system reads from its monitoring history. Fitting it estimates the MTBF
	// independent of how many arrivals happened to hit query execution.
	est.ObserveArrivals(inj.Arrivals(o.Window))

	out := &calibrateResult{Injected: o.MTBF}
	for run := 0; run < o.Runs; run++ {
		for _, q := range calibrateQueries {
			stmt, err := sql.Parse(q.text)
			if err != nil {
				return nil, fmt.Errorf("calibrate %s: %w", q.name, err)
			}
			tstats, err := sql.CollectStats(cat, tableNames(stmt))
			if err != nil {
				return nil, fmt.Errorf("calibrate %s: %w", q.name, err)
			}
			audit, err := sql.BuildAuditPlan(stmt, cat, tstats, cp, base)
			if err != nil {
				return nil, fmt.Errorf("calibrate %s: %w", q.name, err)
			}
			tracer := obs.NewTracer(obs.DefaultCapacity)
			em := &runtime.Metrics{}
			r, err := runtime.New(runtime.Config{Nodes: o.Nodes, Injector: inj, Tracer: tracer, Metrics: em})
			if err != nil {
				return nil, err
			}
			_, rep, err := r.Execute(context.Background(), audit.Phys.Root)
			if err != nil {
				return nil, fmt.Errorf("calibrate %s: %w", q.name, err)
			}
			out.Failures += rep.Failures
			out.Wasted += em.Ledger().Snapshot().WastedSeconds()

			spans := tracer.Snapshot()
			report := obs.BuildAudit(audit.Pred, spans, tracer.Dropped())
			for _, row := range report.Rows {
				// tr is calibrated against failure-free work: total task wall
				// minus the attempts a failure destroyed.
				obsTR := (row.Obs.TaskWall - row.Obs.WastedWall).Seconds()
				predTM, obsTM := 0.0, 0.0
				if row.Pred.Materialize {
					predTM = row.Pred.TM
					// Observed tm(c) is the wall time of the actual
					// checkpoint writes — compressed FTCB blocks — so the
					// tm factor folds the compression ratio into WritePerRow
					// and re-planning prices materialization at its real
					// (smaller) cost.
					obsTM = row.Obs.CheckpointWall.Seconds()
				}
				est.ObserveOp(row.Pred.TR, obsTR, predTM, obsTM)
			}
			for _, sp := range spans {
				if sp.Kind == obs.KindRecovery {
					est.ObserveRepair(sp.Duration().Seconds())
				}
			}
		}
	}

	out.Estimate = est.MTBF()
	out.MTTR, out.MTTRCount = est.MTTR()
	out.TRFactor, out.TMFactor = est.Factors()
	out.Model = est.Model(base)
	out.Params = est.Params(cp)
	out.summary = est.Summary()

	// Re-plan every query under the prior and the calibrated model and report
	// how the materialization choice moved.
	for _, q := range calibrateQueries {
		stmt, err := sql.Parse(q.text)
		if err != nil {
			return nil, err
		}
		tstats, err := sql.CollectStats(cat, tableNames(stmt))
		if err != nil {
			return nil, err
		}
		basePlan, err := sql.FTPlan(stmt, cat, tstats, cp, base, o.TopK)
		if err != nil {
			return nil, fmt.Errorf("re-plan %s (prior): %w", q.name, err)
		}
		calPlan, err := sql.FTPlan(stmt, cat, tstats, out.Params, out.Model, o.TopK)
		if err != nil {
			return nil, fmt.Errorf("re-plan %s (calibrated): %w", q.name, err)
		}
		d := queryDelta{
			Name:        q.name,
			BaseConfig:  basePlan.Config.String(),
			CalConfig:   calPlan.Config.String(),
			BaseRuntime: basePlan.Runtime,
			CalRuntime:  calPlan.Runtime,
		}
		d.Changed = d.BaseConfig != d.CalConfig
		out.Queries = append(out.Queries, d)
	}
	return out, nil
}

func tableNames(stmt *sql.SelectStmt) []string {
	names := make([]string, 0, len(stmt.From))
	for _, tr := range stmt.From {
		names = append(names, tr.Table)
	}
	return names
}

// Report renders the calibration outcome for the CLI.
func (r *calibrateResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "calibration over %d failures observed (%.4gs wasted, injected per-node MTBF %.4gs):\n",
		r.Failures, r.Wasted, r.Injected)
	fmt.Fprintf(&b, "%s\n\n", r.summary)
	model, _ := json.Marshal(r.Model)
	params, _ := json.Marshal(r.Params)
	fmt.Fprintf(&b, "calibrated cost.Model:  %s\n", model)
	fmt.Fprintf(&b, "calibrated CostParams:  %s\n\n", params)
	fmt.Fprintf(&b, "re-planned materialization configurations (prior MTBF %s -> calibrated):\n", failure.FormatDuration(failure.OneHour))
	for _, q := range r.Queries {
		marker := " "
		if q.Changed {
			marker = "*"
		}
		fmt.Fprintf(&b, "%s %-4s %-24s T=%-10.4g ->  %-24s T=%.4g\n",
			marker, q.Name, q.BaseConfig, q.BaseRuntime, q.CalConfig, q.CalRuntime)
	}
	return b.String()
}

// metricsTable documents every metric family ftsql can expose; -list-metrics
// prints it and docs/METRICS.md embeds it (a test keeps them in sync).
func metricsTable() string {
	em := &runtime.Metrics{}
	reg := em.Registry()
	obs.RegisterTraceMetrics(reg, nil)
	obs.RegisterProgressMetrics(reg, nil)
	obs.RegisterDriftMetrics(reg, nil)
	obs.RegisterForensicsMetrics(reg, nil)
	engine.RegisterArenaMetrics(reg, nil)
	prof.RegisterSamplerMetrics(reg, nil)
	return metrics.DescribeTable(reg.Describe())
}

// writeMetricsSnapshot writes the registry's JSON snapshot for -metrics-out.
func writeMetricsSnapshot(path string, reg *metrics.Registry) error {
	data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

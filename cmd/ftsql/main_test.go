package main

import (
	"math"
	"os"
	"strings"
	"testing"
)

// TestCalibrateEstimatesInjectedMTBF is the acceptance check for the
// calibration loop: running TPC-H queries under Poisson failure injection
// with a known per-node MTBF, the estimator fit to the observed failure log
// must land within 20% of the injected rate.
func TestCalibrateEstimatesInjectedMTBF(t *testing.T) {
	const injected = 2.0
	res, err := runCalibrate(calibrateOptions{
		SF:     0.002,
		Nodes:  4,
		Seed:   7,
		Runs:   1,
		MTBF:   injected,
		Window: 400,
		TopK:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Estimate.Valid() {
		t.Fatalf("invalid MTBF estimate: %+v", res.Estimate)
	}
	if rel := math.Abs(res.Estimate.PerNode-injected) / injected; rel > 0.20 {
		t.Errorf("estimated per-node MTBF %.3fs, injected %.1fs: rel error %.3f > 0.20",
			res.Estimate.PerNode, injected, rel)
	}
	if res.Estimate.Lo >= res.Estimate.Hi {
		t.Errorf("degenerate CI [%g, %g]", res.Estimate.Lo, res.Estimate.Hi)
	}
	if len(res.Queries) != len(calibrateQueries) {
		t.Errorf("re-planned %d queries, want %d", len(res.Queries), len(calibrateQueries))
	}
	if res.Model.MTBF != res.Estimate.PerNode {
		t.Errorf("calibrated model MTBF %g != estimate %g", res.Model.MTBF, res.Estimate.PerNode)
	}
	if res.TRFactor <= 0 || res.TMFactor <= 0 {
		t.Errorf("non-positive correction factors: tr=%g tm=%g", res.TRFactor, res.TMFactor)
	}
	report := res.Report()
	for _, want := range []string{"MTBF per node", "calibrated cost.Model", "materialization config"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestListMetricsMatchesDocs pins docs/METRICS.md to the live registry: the
// documented table must be exactly what `ftsql -list-metrics` prints.
func TestListMetricsMatchesDocs(t *testing.T) {
	doc, err := os.ReadFile("../../docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	table := metricsTable()
	if !strings.Contains(string(doc), strings.TrimRight(table, "\n")) {
		t.Errorf("docs/METRICS.md is out of date; regenerate the table with "+
			"`go run ./cmd/ftsql -list-metrics`.\nLive table:\n%s", table)
	}
}

// Command ftsql runs SQL against a generated TPC-H database on the
// partition-parallel engine, optionally under the cost-based fault-tolerance
// scheme with injected node failures.
//
// Usage:
//
//	echo "SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag" | ftsql
//	ftsql -q "SELECT ... " -sf 0.01 -nodes 4
//	ftsql -q "..." -fail "join-1/2/0,aggregate/0/0"    # op/partition/attempt
//	ftsql -q "..." -explain -mtbf 3600                 # cost plan + FT choice
//	ftsql -q "..." -runtime=pipelined -stats           # concurrent runtime + metrics
//	ftsql -calibrate -calibrate-mtbf 2                 # estimate MTBF/MTTR + tr/tm, re-plan
//	ftsql -list-metrics                                # document the metric vocabulary
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ftpde/internal/cost"
	"ftpde/internal/engine"
	"ftpde/internal/failure"
	"ftpde/internal/obs"
	"ftpde/internal/obs/prof"
	"ftpde/internal/runtime"
	"ftpde/internal/sql"
	"ftpde/internal/stats"
	"ftpde/internal/tpch"
)

func main() {
	var (
		query    = flag.String("q", "", "SQL query (default: read from stdin)")
		sf       = flag.Float64("sf", 0.005, "TPC-H scale factor for the generated database")
		nodes    = flag.Int("nodes", 4, "cluster size / partition count")
		seed     = flag.Int64("seed", 7, "data generation seed")
		failSpec = flag.String("fail", "", "injected failures, comma-separated op/partition/attempt triples")
		mat      = flag.String("mat", "", "comma-separated operator names to materialize (e.g. join-1,join-2)")
		explain  = flag.Bool("explain", false, "print the cost plan and the optimizer's materialization choice instead of executing")
		topK     = flag.Int("topk", 5, "join orders to enumerate for -explain (phase 1 of enumFTPlans)")
		mtbf     = flag.Float64("mtbf", failure.OneHour, "per-node MTBF for -explain (seconds)")
		maxRows  = flag.Int("rows", 20, "max result rows to print")
		rt       = flag.String("runtime", "pipelined", "execution runtime: pipelined (concurrent stage DAG) or staged (sequential interpreter)")
		batch    = flag.Int("batch", engine.DefaultBatchSize, "pipeline batch size in rows (pipelined runtime only)")
		showStat = flag.Bool("stats", false, "print runtime metrics (counters, per-stage wall, wasted work) after execution")
		analyze  = flag.Bool("explain-analyze", false, "execute with tracing and print the cost model's predicted-vs-actual audit")
		traceOut = flag.String("trace-out", "", "write the execution timeline to this file in Chrome trace_event format")
		debug    = flag.String("debug-addr", "", "serve live introspection (/metrics, /debug/vars, /debug/queries, /debug/timeline, /debug/trace, /debug/pprof) on this address during execution")
		metOut   = flag.String("metrics-out", "", "write the final metrics registry snapshot to this file as JSON")
		listMet  = flag.Bool("list-metrics", false, "print every metric family this binary can expose, then exit")
		replay   = flag.String("replay-bundle", "", "pretty-print a failure forensics bundle (JSON file written by ftserve -forensics-dir), then exit")
		cal      = flag.Bool("calibrate", false, "run the calibration loop: execute rounds of TPC-H Q1/Q3/Q5 under injected Poisson failures, estimate MTBF/MTTR and tr/tm correction factors, and re-plan with the calibrated model")
		calRuns  = flag.Int("calibrate-runs", 3, "rounds of Q1/Q3/Q5 executed while calibrating")
		calMTBF  = flag.Float64("calibrate-mtbf", 2, "per-node MTBF (seconds) of the Poisson failures injected while calibrating")
		calWin   = flag.Float64("calibrate-window", 400, "failure-log horizon (seconds) backing the MTBF fit")
		profDir  = flag.String("profile-dir", "", "continuous profiling: rotate windowed CPU profiles (plus heap snapshots) into a crash-safe ring in this directory and join samples to operators by pprof label")
		profWin  = flag.Duration("profile-window", 0, "continuous profiling window length (enables memory-only profiling when set without -profile-dir; default 5s when only -profile-dir is set)")
	)
	flag.Parse()

	if *listMet {
		fmt.Print(metricsTable())
		return
	}
	if *replay != "" {
		b, err := obs.ReadBundle(*replay)
		if err != nil {
			fatal(err)
		}
		fmt.Print(b.String())
		return
	}
	if *cal {
		res, err := runCalibrate(calibrateOptions{
			SF: *sf, Nodes: *nodes, Seed: *seed, Runs: *calRuns,
			MTBF: *calMTBF, Window: *calWin, TopK: *topK,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Report())
		return
	}

	text := *query
	if text == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		text = string(data)
	}
	if strings.TrimSpace(text) == "" {
		fatal(fmt.Errorf("no query given (use -q or stdin)"))
	}

	stmt, err := sql.Parse(text)
	if err != nil {
		fatal(err)
	}
	cat, err := tpch.Generate(*sf, *nodes, *seed)
	if err != nil {
		fatal(err)
	}

	if *explain {
		tables := make([]string, 0, len(stmt.From))
		for _, tr := range stmt.From {
			tables = append(tables, tr.Table)
		}
		tstats, err := sql.CollectStats(cat, tables)
		if err != nil {
			fatal(err)
		}
		cp := stats.CostParams{CPUPerRow: 1e-6, WritePerRow: 1.7e-5, Nodes: *nodes}
		m := cost.Model{MTBF: *mtbf, MTTR: 1, Percentile: 0.95, PipeConst: 1, Nodes: *nodes}
		res, err := sql.FTPlan(stmt, cat, tstats, cp, m, *topK)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("best fault-tolerant plan over top-%d join orders (%d candidates scored, %d/%d configs enumerated):\n",
			*topK, res.Stats.PlansConsidered, res.Stats.FTPlansEnumerated, res.Stats.FTPlansTotal)
		for _, op := range res.Plan.Operators() {
			marker := " "
			if op.Materialize {
				marker = "M"
			}
			fmt.Printf("  [%s] %-40s tr=%-10.4g tm=%-10.4g rows=%.4g\n",
				marker, op.Name, op.RunCost, op.MatCost, op.Rows)
		}
		fmt.Printf("\ncost-based choice at MTBF=%s: materialize %s, estimated runtime %.4gs\n",
			failure.FormatDuration(*mtbf), res.Config, res.Runtime)
		return
	}

	var tracer *obs.Tracer
	if *analyze || *traceOut != "" || *debug != "" {
		tracer = obs.NewTracer(obs.DefaultCapacity)
	}

	var pp *sql.PhysicalPlan
	var audit *sql.AuditPlan
	if *analyze {
		tables := make([]string, 0, len(stmt.From))
		for _, tr := range stmt.From {
			tables = append(tables, tr.Table)
		}
		tstats, err := sql.CollectStats(cat, tables)
		if err != nil {
			fatal(err)
		}
		cp := stats.CostParams{CPUPerRow: 1e-6, WritePerRow: 1.7e-5, Nodes: *nodes}
		m := cost.Model{MTBF: *mtbf, MTTR: 1, Percentile: 0.95, PipeConst: 1, Nodes: *nodes}
		audit, err = sql.BuildAuditPlan(stmt, cat, tstats, cp, m)
		if err != nil {
			fatal(err)
		}
		pp = audit.Phys
	} else {
		pp, err = sql.Compile(stmt, cat)
		if err != nil {
			fatal(err)
		}
	}
	for _, name := range splitList(*mat) {
		found := false
		for _, j := range pp.Joins {
			if j.Name() == name {
				j.SetMaterialize(true)
				found = true
			}
		}
		if !found {
			fatal(fmt.Errorf("unknown materialization target %q (joins: %v)", name, joinNames(pp)))
		}
	}

	injector := engine.NewScriptedFailures()
	for _, spec := range splitList(*failSpec) {
		parts := strings.Split(spec, "/")
		if len(parts) != 3 {
			fatal(fmt.Errorf("bad -fail entry %q, want op/partition/attempt", spec))
		}
		part, err1 := strconv.Atoi(parts[1])
		attempt, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			fatal(fmt.Errorf("bad -fail entry %q", spec))
		}
		injector.Add(parts[0], part, attempt)
	}

	// Continuous profiling: start the sampler before execution so the whole
	// query is covered, and label the CLI's single query "1" under tenant
	// "cli" — the same vocabulary the service uses per tenant.
	var sampler *prof.Sampler
	var plabels prof.Labels
	if *profDir != "" || *profWin > 0 {
		sampler, err = prof.New(prof.Config{Dir: *profDir, Window: *profWin})
		if err != nil {
			fatal(err)
		}
		if err := sampler.Start(); err != nil {
			fatal(err)
		}
		plabels = prof.Labels{Query: "1", Tenant: "cli"}
	}

	// One Exec aggregates counters, histograms and the wasted-work ledger for
	// whichever runtime executes the query; the debug server reads it live.
	em := &runtime.Metrics{}
	var (
		progReg *obs.ProgressRegistry
		prog    *obs.Progress
	)
	if tracer != nil {
		obs.RegisterTraceMetrics(em.Registry(), tracer)
		progReg = obs.NewProgressRegistry(8)
		prog = progReg.Begin("cli", pp.Root.Name())
		if audit != nil {
			prog.SetPrediction(audit.Pred.DominantRuntime, obs.StagePredictions(audit.Pred))
		}
	}
	if *debug != "" {
		srv, derr := obs.StartDebug(*debug, tracer, func() any { return em.Snapshot() }, em.Registry(), progReg)
		if derr != nil {
			fatal(derr)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ftsql: debug server on http://%s/debug/vars\n", srv.Addr())
	}

	var (
		res *engine.PartitionedResult
		rep *engine.Report
	)
	switch *rt {
	case "staged":
		co := &engine.Coordinator{Nodes: *nodes, Injector: injector, Tracer: tracer, Metrics: em, Progress: prog, ProfLabels: plabels}
		res, rep, err = co.Execute(pp.Root)
	case "pipelined":
		var r *runtime.Runtime
		r, err = runtime.New(runtime.Config{Nodes: *nodes, Injector: injector, BatchSize: *batch, Tracer: tracer, Metrics: em, Progress: prog, ProfLabels: plabels})
		if err == nil {
			res, rep, err = r.Execute(context.Background(), pp.Root)
		}
	default:
		err = fmt.Errorf("unknown -runtime %q (want pipelined or staged)", *rt)
	}
	progReg.End(prog, err)
	if sampler != nil {
		// Stop rotates the final window, so the attribution below covers the
		// query end to end before anything is reported.
		sampler.Stop()
		fmt.Fprintf(os.Stderr, "ftsql: %s\n", sampler.Summary())
	}
	if err != nil {
		fatal(err)
	}
	if tracer != nil && tracer.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "ftsql: WARNING: tracer dropped %d spans (ring buffer wrapped); audit and timeline are incomplete — raise the tracer capacity\n", tracer.Dropped())
	}
	if *showStat {
		fmt.Fprintf(os.Stderr, "runtime metrics: %s\n\n", em.Snapshot())
	}
	if *metOut != "" {
		if werr := writeMetricsSnapshot(*metOut, em.Registry()); werr != nil {
			fatal(werr)
		}
		fmt.Fprintf(os.Stderr, "ftsql: wrote metrics snapshot to %s\n", *metOut)
	}

	if *traceOut != "" {
		if werr := obs.WriteChromeTraceFile(*traceOut, tracer); werr != nil {
			fatal(werr)
		}
		fmt.Fprintf(os.Stderr, "ftsql: wrote Chrome trace to %s (load in chrome://tracing or Perfetto)\n", *traceOut)
	}

	if *analyze {
		report := obs.BuildAudit(audit.Pred, tracer.Snapshot(), tracer.Dropped())
		if sampler != nil {
			// Join the profiler's measured per-operator CPU/alloc into the
			// audit: the cpu and busy columns compare the model's tp-derived
			// tr(c) against ground-truth on-CPU time rather than wall clock.
			obs.AttachCPU(report, sampler.Attr().OpCPUSeconds(), sampler.Attr().OpAllocBytes())
		}
		fmt.Printf("materialization choice %s (estimated runtime %.4gs); %d result rows\n\n",
			audit.Opt.Config, audit.Opt.Runtime, len(res.AllRows()))
		fmt.Print(report.String())
		fmt.Printf("\nexecution report: failures handled %d, partitions recomputed %d, materialized %d\n",
			rep.Failures, rep.RecomputedPartitions, rep.MaterializedPartitions)
		return
	}

	// Header.
	var header []string
	for _, c := range pp.Output {
		header = append(header, c.Name)
	}
	fmt.Println(strings.Join(header, "\t"))
	rows := res.AllRows()
	for i, r := range rows {
		if i >= *maxRows {
			fmt.Printf("... (%d more rows)\n", len(rows)-*maxRows)
			break
		}
		cells := make([]string, len(r))
		for j, v := range r {
			cells[j] = fmt.Sprintf("%v", v)
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Printf("\n%d rows; failures handled: %d, partitions recomputed: %d, materialized: %d\n",
		len(rows), rep.Failures, rep.RecomputedPartitions, rep.MaterializedPartitions)
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func joinNames(pp *sql.PhysicalPlan) []string {
	var out []string
	for _, j := range pp.Joins {
		out = append(out, j.Name())
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftsql:", err)
	os.Exit(1)
}

// Command ftserve runs the multi-tenant query service: a TPC-H catalog, the
// sql -> core -> cost planning pipeline with load-aware fault-tolerance
// costing, and many concurrent stage-DAG executions on one shared bounded
// worker pool.
//
// Usage:
//
//	ftserve -addr :7070 -http :7071 -sf 0.01 -nodes 4
//	ftserve -addr :7070 -mtbf 2            # serve under injected Poisson failures
//	ftserve -addr :7070 -tenant-rate 10 -tenant-concurrency 2
//	ftserve -addr :7070 -forensics-dir /tmp/forensics -metrics-out /tmp/met.json
//
// The -addr listener speaks the length-prefixed JSON protocol (see
// internal/service); the -http listener serves POST /query, /healthz,
// /metrics, /debug/queries and the full /debug vocabulary. SIGINT/SIGTERM
// drains gracefully: in-flight queries finish (including failure recovery),
// queued and new requests are shed with typed rejects; -metrics-out then
// writes a deterministic registry snapshot before exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"ftpde/internal/engine"
	"ftpde/internal/obs/metrics"
	"ftpde/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":7070", "TCP address for the framed JSON protocol")
		httpA    = flag.String("http", "", "HTTP address for /query, /healthz, /metrics, /debug/queries and /debug/* (empty disables)")
		sf       = flag.Float64("sf", 0.01, "TPC-H scale factor for the served catalog")
		nodes    = flag.Int("nodes", 4, "cluster size / partition count")
		seed     = flag.Int64("seed", 7, "data generation seed")
		workers  = flag.Int("workers", 0, "shared worker pool size (default GOMAXPROCS)")
		maxConc  = flag.Int("max-concurrent", 0, "max queries executing simultaneously (default 2*workers)")
		queue    = flag.Int("queue", 0, "admission queue depth before load shedding (default 2*max-concurrent)")
		tRate    = flag.Float64("tenant-rate", 0, "per-tenant sustained queries/second (0 = unlimited)")
		tBurst   = flag.Float64("tenant-burst", 0, "per-tenant burst budget (default tenant-rate)")
		tConc    = flag.Int("tenant-concurrency", 0, "per-tenant in-flight query cap (0 = unlimited)")
		mtbf     = flag.Float64("mtbf", 0, "injected per-node Poisson failure MTBF in seconds (0 = no injection)")
		mSeed    = flag.Int64("fail-seed", 1, "failure injector seed")
		failSpec = flag.String("fail", "", "deterministic injected failures, comma-separated op/partition/attempt triples (overrides -mtbf)")
		cMTBF    = flag.Float64("model-mtbf", 0, "cost-model per-node MTBF in seconds (default one hour)")
		cMTTR    = flag.Float64("model-mttr", 0, "cost-model MTTR in seconds (default 1)")
		noLoad   = flag.Bool("no-load-aware", false, "disable utilization-scaled recovery costing")
		coarse   = flag.Bool("coarse", false, "force the coarse restart recovery scheme (default fine-grained)")
		maxRst   = flag.Int("max-restarts", 0, "coarse-restart attempts before a query aborts with a forensics bundle (0 = runtime default)")
		forDir   = flag.String("forensics-dir", "", "write failure forensics bundles to this directory (empty disables)")
		forMax   = flag.Int("forensics-max", 0, "bounded forensics ring size: oldest bundles beyond this are pruned (default 32)")
		metOut   = flag.String("metrics-out", "", "write the final metrics registry snapshot to this file as JSON after graceful drain")
		profDir  = flag.String("profile-dir", "", "continuous profiling: rotate windowed CPU profiles into a crash-safe ring in this directory, join samples to tenants/operators by pprof label")
		profWin  = flag.Duration("profile-window", 0, "continuous profiling window length (enables memory-only profiling when set without -profile-dir; default 5s)")
		profMax  = flag.Int("profile-max", 0, "bounded profile ring size per profile kind (default 16)")
		profDuty = flag.Float64("profile-duty", 0.1, "fraction (0,1] of each window the CPU profiler is armed; attributed CPU is scaled by 1/duty, and the 0.1 default keeps the continuous profiling tax under the 2% budget")
	)
	flag.Parse()

	cfg := service.Config{
		SF: *sf, Nodes: *nodes, Seed: *seed,
		Workers: *workers, MaxConcurrent: *maxConc, QueueDepth: *queue,
		TenantRate: *tRate, TenantBurst: *tBurst, TenantConcurrency: *tConc,
		InjectMTBF: *mtbf, InjectSeed: *mSeed,
		ModelMTBF: *cMTBF, ModelMTTR: *cMTTR,
		DisableLoadAware: *noLoad,
		Coarse:           *coarse, MaxRestarts: *maxRst,
		ForensicsDir: *forDir, ForensicsMax: *forMax,
		ProfileDir: *profDir, ProfileWindow: *profWin, ProfileMax: *profMax,
		ProfileDuty: *profDuty,
	}
	if *failSpec != "" {
		inj, err := parseFailSpec(*failSpec)
		if err != nil {
			fatal(err)
		}
		cfg.Injector = inj
	}
	srv, err := service.New(cfg)
	if err != nil {
		fatal(err)
	}

	tcpAddr, err := srv.StartTCP(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ftserve: protocol on %s (sf=%g nodes=%d workers=%d)\n", tcpAddr, *sf, *nodes, srv.Pool().Capacity())
	if *httpA != "" {
		ha, err := srv.StartHTTP(*httpA)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ftserve: http on %s (/query /healthz /metrics /debug)\n", ha)
	}
	if *failSpec != "" {
		fmt.Printf("ftserve: injecting scripted failures %q\n", *failSpec)
	} else if *mtbf > 0 {
		fmt.Printf("ftserve: injecting Poisson failures, per-node MTBF %gs\n", *mtbf)
	}
	if *forDir != "" {
		fmt.Printf("ftserve: forensics bundles in %s\n", *forDir)
	}
	if *profDir != "" || *profWin > 0 {
		fmt.Printf("ftserve: continuous profiling on (dir=%q window=%s duty=%.2f)\n", *profDir, *profWin, *profDuty)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("ftserve: draining (in-flight queries finish, new requests shed)")
	srv.Close()
	if *metOut != "" {
		if err := writeMetricsSnapshot(*metOut, srv.Registry()); err != nil {
			fatal(err)
		}
		fmt.Printf("ftserve: wrote metrics snapshot to %s\n", *metOut)
	}
	fmt.Println("ftserve: drained")
}

// parseFailSpec parses comma-separated op/partition/attempt triples into a
// scripted injector, mirroring ftsql's -fail vocabulary.
func parseFailSpec(spec string) (engine.FailureInjector, error) {
	inj := engine.NewScriptedFailures()
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, "/")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -fail entry %q, want op/partition/attempt", entry)
		}
		part, err1 := strconv.Atoi(parts[1])
		attempt, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad -fail entry %q", entry)
		}
		inj.Add(parts[0], part, attempt)
	}
	return inj, nil
}

// writeMetricsSnapshot persists the registry snapshot as indented JSON — the
// deterministic post-drain artifact CI and operators diff across runs.
func writeMetricsSnapshot(path string, reg *metrics.Registry) error {
	data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftserve:", err)
	os.Exit(1)
}

// Command ftload drives a closed-loop load sweep against the ftserve query
// service and reports throughput/latency per offered load, clean and under
// injected Poisson failures, in the BENCH_service.json reporting format
// (tools/benchdiff understands qps as higher-is-better and p50_ms/p99_ms as
// lower-is-better).
//
// Usage:
//
//	ftload -out BENCH_service.json                 # in-process sweep
//	ftload -clients 1,4,16 -duration 5s -mtbf 2    # sweep with failure arms
//	ftload -addr 127.0.0.1:7070                    # against a running ftserve
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ftpde/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", "", "benchmark a running ftserve at this address (default: in-process servers)")
		out      = flag.String("out", "BENCH_service.json", "output document path (- for stdout)")
		clients  = flag.String("clients", "1,4,16", "comma-separated closed-loop client counts to sweep")
		duration = flag.Duration("duration", 2*time.Second, "measured wall time per arm")
		tenants  = flag.Int("tenants", 4, "tenant labels clients are spread across")
		sf       = flag.Float64("sf", 0.005, "TPC-H scale factor (in-process servers)")
		nodes    = flag.Int("nodes", 4, "cluster size / partition count")
		seed     = flag.Int64("seed", 7, "data generation seed")
		workers  = flag.Int("workers", 0, "shared pool size (default GOMAXPROCS)")
		maxConc  = flag.Int("max-concurrent", 0, "max concurrent queries (default 2*workers)")
		queue    = flag.Int("queue", 0, "admission queue depth (default 2*max-concurrent)")
		mtbf     = flag.Float64("mtbf", 2, "per-node MTBF (seconds) of the failure-injected arm; 0 skips it")
	)
	flag.Parse()

	sweep, err := parseClients(*clients)
	if err != nil {
		fatal(err)
	}
	doc, err := service.RunSweep(service.BenchConfig{
		SF: *sf, Nodes: *nodes, Seed: *seed,
		Workers: *workers, MaxConcurrent: *maxConc, QueueDepth: *queue,
		Tenants: *tenants, Clients: sweep, Duration: *duration,
		MTBF: *mtbf, Addr: *addr,
	}, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ftload: "+format+"\n", args...)
	})
	if err != nil {
		fatal(err)
	}

	body, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	body = append(body, '\n')
	if *out == "-" {
		os.Stdout.Write(body)
		return
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("ftload: wrote %s (%d sweep points)\n", *out, len(doc.Sweep))
}

func parseClients(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad client count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -clients sweep")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftload:", err)
	os.Exit(1)
}

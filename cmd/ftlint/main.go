// Command ftlint is the repo's multichecker: it loads the packages named by
// its arguments (default ./...) and runs every analyzer registered in
// internal/lint, printing findings as file:line:col: analyzer: message, or
// as a JSON array with -json for tooling (the CI problem matcher consumes
// the plain-text form; editors and scripts consume the JSON form).
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// Usage:
//
//	go run ./cmd/ftlint ./...
//	go run ./cmd/ftlint -run ckpterr,spanpair ./internal/engine/...
//	go run ./cmd/ftlint -json ./... > findings.json
//	go run ./cmd/ftlint -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ftpde/internal/lint"
	"ftpde/internal/lint/analysis"
)

// jsonFinding is the stable machine-readable shape of one finding. Field
// names are part of the tool's interface; the CI workflow and editor
// integrations parse them.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("ftlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	asJSON := fs.Bool("json", false, "print findings as a JSON array of {file,line,col,analyzer,message}")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ftlint [-run a,b] [-json] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers
	if *runList != "" {
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "ftlint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "ftlint: %v\n", err)
		return 2
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "ftlint: load: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "ftlint: %v\n", err)
		return 2
	}
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "ftlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "ftlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

// Command ftlint is the repo's multichecker: it loads the packages named by
// its arguments (default ./...) and runs every analyzer registered in
// internal/lint, printing findings as file:line:col: analyzer: message.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// Usage:
//
//	go run ./cmd/ftlint ./...
//	go run ./cmd/ftlint -run ckpterr,spanpair ./internal/engine/...
//	go run ./cmd/ftlint -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ftpde/internal/lint"
	"ftpde/internal/lint/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("ftlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ftlint [-run a,b] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers
	if *runList != "" {
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "ftlint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "ftlint: %v\n", err)
		return 2
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "ftlint: load: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "ftlint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "ftlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

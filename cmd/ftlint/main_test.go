package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot resolves the repo root from go env GOMOD, so the smoke test
// works regardless of the test binary's working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

// TestFtlintRepoIsClean is the gate the CI job enforces: the multichecker
// over the whole module must exit 0. A regression that reintroduces a
// discarded checkpoint error or an unpaired failure span fails this test.
func TestFtlintRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module; skipped in -short")
	}
	cmd := exec.Command("go", "run", "./cmd/ftlint", "./...")
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./cmd/ftlint ./... failed: %v\n%s", err, out)
	}
	if len(strings.TrimSpace(string(out))) != 0 {
		t.Fatalf("expected no findings, got:\n%s", out)
	}
}

func TestListFlag(t *testing.T) {
	stdout := tempFile(t)
	stderr := tempFile(t)
	if code := run([]string{"-list"}, stdout, stderr); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	listing := readBack(t, stdout)
	for _, name := range []string{"arenaown", "batchalias", "chanproto", "ckpterr", "costfloat", "ctxleak", "determin", "spanpair"} {
		if !strings.Contains(listing, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, listing)
		}
	}
}

// TestJSONFlag runs the real arenaown analyzer over its own fixture package
// (which contains deliberate violations) and checks the machine-readable
// output shape plus the exit-code contract: findings still exit 1.
func TestJSONFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks a fixture package; skipped in -short")
	}
	fixture := filepath.Join(moduleRoot(t), "internal", "lint", "arenaown", "testdata", "src", "internal", "engine")
	t.Chdir(fixture)
	stdout := tempFile(t)
	stderr := tempFile(t)
	code := run([]string{"-run", "arenaown", "-json", "."}, stdout, stderr)
	if code != 1 {
		t.Fatalf("-json over fixture exited %d, want 1 (stderr: %s)", code, readBack(t, stderr))
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(readBack(t, stdout)), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, readBack(t, stdout))
	}
	if len(findings) == 0 {
		t.Fatal("expected findings from the arenaown fixture, got none")
	}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Analyzer != "arenaown" || f.Message == "" {
			t.Errorf("malformed finding: %+v", f)
		}
	}
}

func TestUnknownAnalyzerExitsUsage(t *testing.T) {
	stdout := tempFile(t)
	stderr := tempFile(t)
	if code := run([]string{"-run", "nosuch"}, stdout, stderr); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
	if msg := readBack(t, stderr); !strings.Contains(msg, "unknown analyzer") {
		t.Errorf("stderr missing diagnosis: %q", msg)
	}
}

func tempFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func readBack(t *testing.T, f *os.File) string {
	t.Helper()
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

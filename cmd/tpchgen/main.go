// Command tpchgen generates a deterministic TPC-H database and dumps it as
// dbgen-format .tbl files, or reports the cardinalities of an existing dump.
//
// Usage:
//
//	tpchgen -sf 0.01 -out /tmp/tpch
//	tpchgen -load /tmp/tpch -nodes 4     # verify a dump loads
package main

import (
	"flag"
	"fmt"
	"os"

	"ftpde/internal/tpch"
)

func main() {
	var (
		sf    = flag.Float64("sf", 0.01, "scale factor")
		nodes = flag.Int("nodes", 4, "partition count")
		seed  = flag.Int64("seed", 7, "generation seed")
		out   = flag.String("out", "", "directory to write .tbl files to")
		load  = flag.String("load", "", "directory to load .tbl files from (verification mode)")
	)
	flag.Parse()

	if *load != "" {
		cat, err := tpch.LoadTBL(*load, *nodes)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded catalog from %s (%d partitions):\n", *load, *nodes)
		for _, name := range []string{"region", "nation", "supplier", "customer", "orders", "lineitem", "part", "partsupp"} {
			t, err := cat.Table(name)
			if err != nil {
				fatal(err)
			}
			repl := ""
			if t.Replicated {
				repl = " (replicated)"
			}
			fmt.Printf("  %-10s %8d rows%s\n", name, t.LogicalRows(), repl)
		}
		return
	}

	if *out == "" {
		fatal(fmt.Errorf("either -out or -load is required"))
	}
	cat, err := tpch.Generate(*sf, *nodes, *seed)
	if err != nil {
		fatal(err)
	}
	if err := tpch.DumpTBL(cat, *out); err != nil {
		fatal(err)
	}
	li, _ := cat.Table("lineitem")
	fmt.Printf("wrote TPC-H SF%g to %s (%d lineitem rows)\n", *sf, *out, li.Rows())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpchgen:", err)
	os.Exit(1)
}

// Command xdbsim runs one TPC-H query under one fault-tolerance scheme on a
// simulated shared-nothing cluster with an injected failure trace, printing
// the per-stage timeline — the reproduction of a single cell of the paper's
// overhead figures.
//
// Usage:
//
//	xdbsim -query Q5 -scheme cost-based -sf 100 -mtbf 3600 -seed 3
//	xdbsim -query Q1C -scheme all-mat -mtbf 1800
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"ftpde/internal/cost"
	"ftpde/internal/exec"
	"ftpde/internal/failure"
	"ftpde/internal/obs"
	"ftpde/internal/obs/metrics"
	"ftpde/internal/schemes"
	"ftpde/internal/tpch"
)

func main() {
	var (
		query    = flag.String("query", "Q5", "TPC-H query: Q1, Q3, Q5, Q1C, Q2C")
		scheme   = flag.String("scheme", "cost-based", "fault-tolerance scheme: all-mat, no-mat-lineage, no-mat-restart, cost-based")
		sf       = flag.Float64("sf", 100, "TPC-H scale factor")
		nodes    = flag.Int("nodes", 10, "cluster size")
		mtbf     = flag.Float64("mtbf", failure.OneHour, "per-node MTBF (seconds)")
		mttr     = flag.Float64("mttr", 1, "mean time to repair (seconds)")
		seed     = flag.Int64("seed", 1, "failure trace seed")
		traceOut = flag.String("trace-out", "", "write the simulated timeline to this file in Chrome trace_event format")
		debug    = flag.String("debug-addr", "", "serve the simulated timeline and pprof on this address until interrupted")
		metOut   = flag.String("metrics-out", "", "write the simulated run's metrics registry snapshot to this file as JSON")
	)
	flag.Parse()

	builders := map[string]func(tpch.Params) (*tpch.Query, error){
		"Q1": tpch.Q1, "Q3": tpch.Q3, "Q5": tpch.Q5, "Q1C": tpch.Q1C, "Q2C": tpch.Q2C,
	}
	build, ok := builders[*query]
	if !ok {
		fatal(fmt.Errorf("unknown query %q", *query))
	}
	kinds := map[string]schemes.Kind{
		"all-mat": schemes.AllMat, "no-mat-lineage": schemes.NoMatLineage,
		"no-mat-restart": schemes.NoMatRestart, "cost-based": schemes.CostBased,
	}
	kind, ok := kinds[*scheme]
	if !ok {
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}

	q, err := build(tpch.Params{SF: *sf, Nodes: *nodes})
	if err != nil {
		fatal(err)
	}
	spec := failure.Spec{Nodes: *nodes, MTBF: *mtbf, MTTR: *mttr}
	model := cost.DefaultModel(spec)

	cfg, err := kind.Configure(q.Plan, model)
	if err != nil {
		fatal(err)
	}
	p := q.Plan.Clone()
	if err := p.Apply(cfg); err != nil {
		fatal(err)
	}

	trace := failure.NewTrace(spec, 500*q.Baseline, *seed)
	res, err := exec.Run(p, exec.Options{Cluster: spec, Model: model, Recovery: kind.Recovery()}, trace)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s under %s on %s\n", q.Name, kind, spec)
	fmt.Printf("baseline (failure-free, pipelined): %.2fs\n", q.Baseline)
	fmt.Printf("materialized intermediates: %s\n", cfg)
	if res.Aborted {
		fmt.Printf("ABORTED after %d restarts (%.2fs elapsed)\n", res.Restarts, res.Runtime)
		return
	}
	fmt.Printf("simulated runtime: %.2fs (overhead %.2f%%), %d failures hit execution",
		res.Runtime, (res.Runtime-q.Baseline)/q.Baseline*100, res.Failures)
	if res.Restarts > 0 {
		fmt.Printf(", %d full restarts", res.Restarts)
	}
	fmt.Println()
	if res.Failures > 0 {
		fmt.Println(res.Ledger.String())
	}

	if len(res.Stages) > 0 {
		exec.SortStages(res.Stages)
		fmt.Println("\nstage timeline:")
		fmt.Printf("  %-28s %-10s %-10s %-8s %s\n", "stage", "start", "end", "work", "retries")
		for _, s := range res.Stages {
			fmt.Printf("  %-28s %-10.2f %-10.2f %-8.2f %d\n", s.Name, s.Start, s.End, s.Work, s.Retries)
		}
		fmt.Println("\ngantt (each ▓ block is simulated time; ░ marks retry-inflated span):")
		printGantt(res.Stages, res.Runtime)
	}

	if *traceOut != "" {
		if err := obs.WriteChromeTraceSpans(*traceOut, exec.SimEpoch, res.Spans); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote Chrome trace to %s (simulated seconds map to wall-clock seconds)\n", *traceOut)
	}
	if *metOut != "" {
		data, err := json.MarshalIndent(simRegistry(res).Snapshot(), "", "  ")
		if err == nil {
			err = os.WriteFile(*metOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote metrics snapshot to %s\n", *metOut)
	}
	if *debug != "" {
		tracer := obs.NewTracer(len(res.Spans) * 2)
		tracer.Ingest(res.Spans)
		srv, err := obs.StartDebug(*debug, tracer, func() any { return res }, simRegistry(res), nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ndebug server on http://%s/debug/timeline — ctrl-c to exit\n", srv.Addr())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		srv.Close()
	}
}

// simRegistry exposes a simulated run through the shared metric vocabulary:
// the runtime, failure and restart totals plus the wasted-work ledger, all in
// simulated seconds.
func simRegistry(res *exec.Result) *metrics.Registry {
	reg := metrics.NewRegistry()
	reg.MustRegisterFunc(metrics.Desc{
		Name: "ftpde_sim_runtime_seconds", Kind: metrics.KindGauge, Unit: "seconds",
		Help: "Simulated query runtime under the injected failure trace.",
	}, func() []metrics.Sample { return []metrics.Sample{{Value: res.Runtime}} })
	reg.MustRegisterFunc(metrics.Desc{
		Name: "ftpde_sim_failures_total", Kind: metrics.KindCounter,
		Help: "Failures that interrupted the simulated execution.",
	}, func() []metrics.Sample { return []metrics.Sample{{Value: float64(res.Failures)}} })
	reg.MustRegisterFunc(metrics.Desc{
		Name: "ftpde_sim_restarts_total", Kind: metrics.KindCounter,
		Help: "Full-query restarts (coarse-grained recovery only).",
	}, func() []metrics.Sample { return []metrics.Sample{{Value: float64(res.Restarts)}} })
	reg.MustRegisterFunc(metrics.Desc{
		Name: "ftpde_wasted_seconds_total", Kind: metrics.KindCounter, Unit: "seconds",
		Labels: []string{"cause"},
		Help:   "Simulated seconds lost to failures and repair waits, by cause.",
	}, func() []metrics.Sample {
		out := make([]metrics.Sample, 0, len(res.Ledger.Totals))
		for _, t := range res.Ledger.Totals {
			out = append(out, metrics.Sample{LabelValues: []string{string(t.Cause)}, Value: t.Seconds})
		}
		return out
	})
	return reg
}

// printGantt renders stage intervals as an ASCII chart scaled to the total
// runtime. The deterministic-work portion of each stage prints as ▓, the
// extra span caused by failures and redeploys as ░.
func printGantt(stages []exec.StageReport, total float64) {
	const width = 64
	if total <= 0 {
		return
	}
	for _, s := range stages {
		startCol := int(s.Start / total * width)
		workEnd := s.Start + s.Work
		if workEnd > s.End {
			workEnd = s.End
		}
		workCol := int(workEnd / total * width)
		endCol := int(s.End / total * width)
		if endCol <= startCol {
			endCol = startCol + 1
		}
		if workCol < startCol {
			workCol = startCol
		}
		line := make([]rune, width)
		for i := range line {
			line[i] = ' '
		}
		for i := startCol; i < endCol && i < width; i++ {
			if i < workCol {
				line[i] = '▓'
			} else {
				line[i] = '░'
			}
		}
		fmt.Printf("  %-28s |%s|\n", s.Name, string(line))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xdbsim:", err)
	os.Exit(1)
}

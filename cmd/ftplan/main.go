// Command ftplan runs the cost-based fault-tolerance optimizer on a plan.
//
// The plan is read as JSON (see internal/plan's wire format) from a file or
// stdin; cluster statistics are passed as flags. The tool prints the chosen
// materialization configuration, the estimated runtime under mid-query
// failures, the dominant path's cost breakdown, and optionally the plan as
// Graphviz DOT.
//
// Usage:
//
//	ftplan -mtbf 3600 -mttr 1 -nodes 10 < plan.json
//	ftplan -f plan.json -dot
//	ftplan -example            # optimize the paper's running example
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ftpde/internal/core"
	"ftpde/internal/cost"
	"ftpde/internal/failure"
	"ftpde/internal/plan"
)

func main() {
	var (
		file       = flag.String("f", "", "plan JSON file (default: stdin)")
		mtbf       = flag.Float64("mtbf", failure.OneDay, "per-node mean time between failures (seconds)")
		mttr       = flag.Float64("mttr", 1, "mean time to repair (seconds)")
		nodes      = flag.Int("nodes", 10, "cluster size")
		percentile = flag.Float64("s", failure.DefaultPercentile, "target success percentile S")
		pipe       = flag.Float64("pipe", 1, "CONSTpipe pipeline-parallelism constant")
		dot        = flag.Bool("dot", false, "print the optimized plan as Graphviz DOT")
		example    = flag.Bool("example", false, "optimize the paper's running example instead of reading a plan")
	)
	flag.Parse()

	var p *plan.Plan
	if *example {
		p = plan.PaperExample()
		// Start from a clean slate: let the optimizer decide.
		if err := p.Apply(plan.NoMat(p)); err != nil {
			fatal(err)
		}
	} else {
		var r io.Reader = os.Stdin
		if *file != "" {
			f, err := os.Open(*file)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			r = f
		}
		data, err := io.ReadAll(r)
		if err != nil {
			fatal(err)
		}
		p = plan.New()
		if err := json.Unmarshal(data, p); err != nil {
			fatal(fmt.Errorf("parsing plan: %w", err))
		}
	}

	m := cost.Model{MTBF: *mtbf, MTTR: *mttr, Percentile: *percentile, PipeConst: *pipe, Nodes: *nodes}
	res, err := core.Optimize(p, core.Options{Model: m})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("cluster: n=%d, MTBF=%s, MTTR=%s, S=%.2f\n",
		*nodes, failure.FormatDuration(*mtbf), failure.FormatDuration(*mttr), *percentile)
	fmt.Printf("plan: %d operators, %d free\n", p.Len(), len(p.FreeOperators()))
	fmt.Printf("materialize: %s\n", res.Config)
	fmt.Printf("estimated runtime under failures: %.2fs (dominant path)\n", res.Runtime)
	fmt.Println("\ndominant path breakdown:")
	fmt.Printf("  %-6s %-10s %-10s %-10s %-10s\n", "op", "t(c)", "w(c)", "a(c)", "T(c)")
	for i, id := range res.Dominant.Path {
		oc := res.Dominant.Ops[i]
		fmt.Printf("  %-6d %-10.2f %-10.2f %-10.4f %-10.2f\n", id, oc.Total, oc.Wasted, oc.Attempts, oc.Runtime)
	}
	fmt.Printf("\nenumeration: %d/%d configurations scored (rule1 bound %d ops, rule2 bound %d ops, rule3 stopped %d)\n",
		res.Stats.FTPlansEnumerated, res.Stats.FTPlansTotal,
		res.Stats.Rule1Bound, res.Stats.Rule2Bound, res.Stats.FTPlansRule3Stopped)

	if *dot {
		fmt.Println()
		fmt.Print(res.Plan.DOT("optimized fault-tolerant plan"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftplan:", err)
	os.Exit(1)
}

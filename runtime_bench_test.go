// Throughput benchmarks comparing the concurrent pipelined runtime
// (internal/runtime) against the staged sequential interpreter
// (internal/engine) on the same operator DAGs, plus a JSON emitter that
// records the comparison in BENCH_runtime.json so the perf trajectory is
// tracked across PRs.
//
// Run with:
//
//	go test -bench=Runtime -benchmem
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	goruntime "runtime"
	"testing"
	"time"

	"ftpde/internal/engine"
	"ftpde/internal/runtime"
	"ftpde/internal/tpch"
)

// multiBranchPlan builds a multi-stage DAG with `branches` independent
// scan -> select -> project -> global-agg chains whose one-row outputs are
// combined by a chain of cheap joins. The staged engine runs the branches
// strictly one operator at a time; the pipelined runtime overlaps them, so
// with GOMAXPROCS >= branches it wins even when each operator is itself
// partition-parallel.
func multiBranchPlan(rowsPerBranch, branches, parts int) (engine.Operator, error) {
	schema := engine.Schema{{Name: "k", Type: engine.TypeInt}, {Name: "v", Type: engine.TypeFloat}}
	heavy := func(c engine.Expr) engine.Expr {
		// A few rounds of arithmetic per row stands in for a real UDF.
		e := c
		for i := 0; i < 8; i++ {
			e = engine.Arith{Op: engine.Add,
				L: engine.Arith{Op: engine.Mul, L: e, R: engine.Const{V: 1.0000001}},
				R: engine.Const{V: 0.5}}
		}
		return e
	}
	var root engine.Operator
	for b := 0; b < branches; b++ {
		rows := make([]engine.Row, rowsPerBranch)
		for i := range rows {
			rows[i] = engine.Row{int64(i), float64((i*7 + b) % 1000)}
		}
		tb, err := engine.NewTable(fmt.Sprintf("t%d", b), schema, rows, parts, 0)
		if err != nil {
			return nil, err
		}
		scan := engine.NewScan(fmt.Sprintf("scan-%d", b), tb, nil, nil)
		sel := engine.NewSelect(fmt.Sprintf("sel-%d", b), scan,
			engine.Cmp{Op: engine.LT, L: engine.Col(1), R: engine.Const{V: 900.0}})
		proj := engine.NewProject(fmt.Sprintf("proj-%d", b), sel,
			[]engine.Expr{engine.Const{V: int64(1)}, heavy(engine.Col(1))},
			engine.Schema{{Name: "one", Type: engine.TypeInt}, {Name: "u", Type: engine.TypeFloat}})
		agg := engine.NewHashAggregate(fmt.Sprintf("agg-%d", b), proj, []int{0},
			[]engine.AggSpec{{Kind: engine.AggSum, Col: 1}}, true,
			engine.Schema{{Name: "one", Type: engine.TypeInt}, {Name: "sum", Type: engine.TypeFloat}})
		if root == nil {
			root = agg
		} else {
			root = engine.NewHashJoin(fmt.Sprintf("combine-%d", b), agg, root, 0, 0)
		}
	}
	return root, nil
}

const (
	benchBranchRows = 60000
	benchBranches   = 4
	benchParts      = 2 // fewer partitions than cores: stage overlap is the win
)

func runStagedOnce(b testing.TB, root engine.Operator) {
	co := &engine.Coordinator{Nodes: benchParts}
	res, _, err := co.Execute(root)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.AllRows()) == 0 {
		b.Fatal("empty result")
	}
}

func runPipelinedOnce(b testing.TB, root engine.Operator, m *runtime.Metrics) {
	r, err := runtime.New(runtime.Config{Nodes: benchParts, Metrics: m})
	if err != nil {
		b.Fatal(err)
	}
	res, _, err := r.Execute(context.Background(), root)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.AllRows()) == 0 {
		b.Fatal("empty result")
	}
}

func BenchmarkRuntimeStagedMultiBranch(b *testing.B) {
	root, err := multiBranchPlan(benchBranchRows, benchBranches, benchParts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runStagedOnce(b, root)
	}
}

func BenchmarkRuntimePipelinedMultiBranch(b *testing.B) {
	root, err := multiBranchPlan(benchBranchRows, benchBranches, benchParts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPipelinedOnce(b, root, nil)
	}
}

// TPC-H Q3 end to end on the pipelined runtime, with and without an
// injected failure — the pipelined counterpart of BenchmarkEngineQ3.
func benchPipelinedQ3(b *testing.B, withFailure bool) {
	cat, err := tpch.Generate(0.002, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := tpch.EngineQ3(cat, "BUILDING", 1200, true)
		if err != nil {
			b.Fatal(err)
		}
		var inj engine.FailureInjector = engine.NoFailures{}
		if withFailure {
			inj = engine.NewScriptedFailures().Add("q3-join-orders-lineitem", 1, 0)
		}
		r, err := runtime.New(runtime.Config{Nodes: 4, Injector: inj})
		if err != nil {
			b.Fatal(err)
		}
		res, _, err := r.Execute(context.Background(), q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.AllRows()) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkRuntimePipelinedQ3(b *testing.B)         { benchPipelinedQ3(b, false) }
func BenchmarkRuntimePipelinedQ3Recovery(b *testing.B) { benchPipelinedQ3(b, true) }

// benchRecord is one measurement in BENCH_runtime.json.
type benchRecord struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
}

type benchReport struct {
	GOMAXPROCS    int              `json:"gomaxprocs"`
	Branches      int              `json:"branches"`
	RowsPerBranch int              `json:"rows_per_branch"`
	Partitions    int              `json:"partitions"`
	Runs          []benchRecord    `json:"runs"`
	Speedup       float64          `json:"pipelined_speedup"`
	Metrics       runtime.Snapshot `json:"pipelined_metrics"`
}

// TestWriteRuntimeBenchJSON measures staged vs pipelined on the multi-branch
// plan and writes BENCH_runtime.json so the perf trajectory is tracked
// across PRs. Timing noise is recorded, not asserted on.
func TestWriteRuntimeBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping bench JSON emission in -short mode")
	}
	root, err := multiBranchPlan(benchBranchRows, benchBranches, benchParts)
	if err != nil {
		t.Fatal(err)
	}
	// Warm both paths once, then take the best of three.
	runStagedOnce(t, root)
	runPipelinedOnce(t, root, nil)
	best := func(f func()) float64 {
		bestD := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD.Seconds()
	}
	staged := best(func() { runStagedOnce(t, root) })
	m := &runtime.Metrics{}
	pipelined := best(func() { runPipelinedOnce(t, root, m) })

	report := benchReport{
		GOMAXPROCS:    goruntime.GOMAXPROCS(0),
		Branches:      benchBranches,
		RowsPerBranch: benchBranchRows,
		Partitions:    benchParts,
		Runs: []benchRecord{
			{Name: "staged", WallSeconds: staged},
			{Name: "pipelined", WallSeconds: pipelined},
		},
		Speedup: staged / pipelined,
		Metrics: m.Snapshot(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_runtime.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("staged=%.3fs pipelined=%.3fs speedup=%.2fx (GOMAXPROCS=%d)",
		staged, pipelined, report.Speedup, report.GOMAXPROCS)
	if report.GOMAXPROCS >= 4 && report.Speedup < 1 {
		t.Logf("warning: pipelined slower than staged on this machine/run")
	}
}

// Throughput benchmarks comparing the concurrent pipelined runtime
// (internal/runtime) against the staged sequential interpreter
// (internal/engine) on the same operator DAGs, plus a JSON emitter that
// records the comparison in BENCH_runtime.json so the perf trajectory is
// tracked across PRs.
//
// Run with:
//
//	go test -bench=Runtime -benchmem
package bench

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	goruntime "runtime"
	"testing"
	"time"

	"ftpde/internal/engine"
	"ftpde/internal/lint"
	lintanalysis "ftpde/internal/lint/analysis"
	"ftpde/internal/obs"
	"ftpde/internal/obs/prof"
	"ftpde/internal/runtime"
	"ftpde/internal/tpch"
)

// multiBranchPlan builds a multi-stage DAG with `branches` independent
// scan -> select -> project -> global-agg chains whose one-row outputs are
// combined by a chain of cheap joins. The staged engine runs the branches
// strictly one operator at a time; the pipelined runtime overlaps them, so
// with GOMAXPROCS >= branches it wins even when each operator is itself
// partition-parallel.
func multiBranchPlan(rowsPerBranch, branches, parts int) (engine.Operator, error) {
	schema := engine.Schema{{Name: "k", Type: engine.TypeInt}, {Name: "v", Type: engine.TypeFloat}}
	heavy := func(c engine.Expr) engine.Expr {
		// A few rounds of arithmetic per row stands in for a real UDF.
		e := c
		for i := 0; i < 8; i++ {
			e = engine.Arith{Op: engine.Add,
				L: engine.Arith{Op: engine.Mul, L: e, R: engine.Const{V: 1.0000001}},
				R: engine.Const{V: 0.5}}
		}
		return e
	}
	var root engine.Operator
	for b := 0; b < branches; b++ {
		rows := make([]engine.Row, rowsPerBranch)
		for i := range rows {
			rows[i] = engine.Row{int64(i), float64((i*7 + b) % 1000)}
		}
		tb, err := engine.NewTable(fmt.Sprintf("t%d", b), schema, rows, parts, 0)
		if err != nil {
			return nil, err
		}
		scan := engine.NewScan(fmt.Sprintf("scan-%d", b), tb, nil, nil)
		sel := engine.NewSelect(fmt.Sprintf("sel-%d", b), scan,
			engine.Cmp{Op: engine.LT, L: engine.Col(1), R: engine.Const{V: 900.0}})
		proj := engine.NewProject(fmt.Sprintf("proj-%d", b), sel,
			[]engine.Expr{engine.Const{V: int64(1)}, heavy(engine.Col(1))},
			engine.Schema{{Name: "one", Type: engine.TypeInt}, {Name: "u", Type: engine.TypeFloat}})
		agg := engine.NewHashAggregate(fmt.Sprintf("agg-%d", b), proj, []int{0},
			[]engine.AggSpec{{Kind: engine.AggSum, Col: 1}}, true,
			engine.Schema{{Name: "one", Type: engine.TypeInt}, {Name: "sum", Type: engine.TypeFloat}})
		if root == nil {
			root = agg
		} else {
			root = engine.NewHashJoin(fmt.Sprintf("combine-%d", b), agg, root, 0, 0)
		}
	}
	return root, nil
}

const (
	benchBranchRows = 60000
	benchBranches   = 4
	benchParts      = 2 // fewer partitions than cores: stage overlap is the win
)

func runStagedOnce(b testing.TB, root engine.Operator) {
	co := &engine.Coordinator{Nodes: benchParts}
	res, _, err := co.Execute(root)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.AllRows()) == 0 {
		b.Fatal("empty result")
	}
}

func runPipelinedOnce(b testing.TB, root engine.Operator, m *runtime.Metrics) {
	r, err := runtime.New(runtime.Config{Nodes: benchParts, Metrics: m})
	if err != nil {
		b.Fatal(err)
	}
	res, _, err := r.Execute(context.Background(), root)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.AllRows()) == 0 {
		b.Fatal("empty result")
	}
}

func BenchmarkRuntimeStagedMultiBranch(b *testing.B) {
	root, err := multiBranchPlan(benchBranchRows, benchBranches, benchParts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runStagedOnce(b, root)
	}
}

func BenchmarkRuntimePipelinedMultiBranch(b *testing.B) {
	root, err := multiBranchPlan(benchBranchRows, benchBranches, benchParts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPipelinedOnce(b, root, nil)
	}
}

// TPC-H Q3 end to end on the pipelined runtime, with and without an
// injected failure — the pipelined counterpart of BenchmarkEngineQ3.
func benchPipelinedQ3(b *testing.B, withFailure bool) {
	cat, err := tpch.Generate(0.002, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := tpch.EngineQ3(cat, "BUILDING", 1200, true)
		if err != nil {
			b.Fatal(err)
		}
		var inj engine.FailureInjector = engine.NoFailures{}
		if withFailure {
			inj = engine.NewScriptedFailures().Add("q3-join-orders-lineitem", 1, 0)
		}
		r, err := runtime.New(runtime.Config{Nodes: 4, Injector: inj})
		if err != nil {
			b.Fatal(err)
		}
		res, _, err := r.Execute(context.Background(), q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.AllRows()) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkRuntimePipelinedQ3(b *testing.B)         { benchPipelinedQ3(b, false) }
func BenchmarkRuntimePipelinedQ3Recovery(b *testing.B) { benchPipelinedQ3(b, true) }

// TPC-H Q1 end to end on the pipelined runtime — the alloc-budget anchor:
// scan → select → aggregate over lineitem with the arena recycling batch
// buffers across the pipeline. Plan construction happens outside the timed
// loop so the measurement is pure execution.
func BenchmarkRuntimePipelinedQ1(b *testing.B) {
	cat, err := tpch.Generate(0.002, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	q1, err := tpch.EngineQ1(cat, 2500)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := runtime.New(runtime.Config{Nodes: 4})
		if err != nil {
			b.Fatal(err)
		}
		res, _, err := r.Execute(context.Background(), q1)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.AllRows()) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkRuntimePipelinedQ1Progress is the same workload with a live
// obs.Progress attached, the way ftserve runs every query. The delta against
// BenchmarkRuntimePipelinedQ1 is the whole cost of introspection; the
// alloc_budget.json ceiling for pipelined_q1_progress keeps that delta from
// growing silently, and BENCH_runtime.json records it as obs_overhead_ns.
func BenchmarkRuntimePipelinedQ1Progress(b *testing.B) {
	cat, err := tpch.Generate(0.002, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	q1, err := tpch.EngineQ1(cat, 2500)
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewProgressRegistry(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := reg.Begin("bench", "q1")
		r, err := runtime.New(runtime.Config{Nodes: 4, Progress: prog})
		if err != nil {
			b.Fatal(err)
		}
		res, _, err := r.Execute(context.Background(), q1)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.AllRows()) == 0 {
			b.Fatal("empty result")
		}
		reg.End(prog, nil)
	}
}

// BenchmarkRuntimePipelinedQ1Profiled is the same Q1 workload with the
// continuous profiler attached the way ftserve runs it when -profile-dir is
// set: pprof labels on every goroutine handoff plus a 100 Hz CPU sampler at
// the server's default 10% duty cycle (armed for the first tenth of each
// window, dark for the rest, attribution scaled by 1/duty). The window here is
// 500ms rather than the server's 5s only so a ~1s measurement spans full
// cycles. The delta against BenchmarkRuntimePipelinedQ1 is the whole cost of
// continuous profiling; BENCH_runtime.json records it as prof_overhead_ns /
// prof_overhead_frac with a 2% bar. (Always-on profiling — duty 1, what the
// one-shot CLI uses — measures at several percent on a single-core box; the
// duty cycle is precisely what buys the budget back for servers.)
func BenchmarkRuntimePipelinedQ1Profiled(b *testing.B) {
	cat, err := tpch.Generate(0.002, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	q1, err := tpch.EngineQ1(cat, 2500)
	if err != nil {
		b.Fatal(err)
	}
	s, err := prof.New(prof.Config{Window: 500 * time.Millisecond, Duty: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	defer s.Stop()
	labels := prof.Labels{Query: "bench", Tenant: "bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := runtime.New(runtime.Config{Nodes: 4, ProfLabels: labels})
		if err != nil {
			b.Fatal(err)
		}
		res, _, err := r.Execute(context.Background(), q1)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.AllRows()) == 0 {
			b.Fatal("empty result")
		}
	}
}

// Scan→filter→project through the shared operator kernels, columnar vs. the
// []Row baseline. The baseline table carries a plain-int key column, which
// defeats strict typing: the same kernel objects then execute their
// interpreted row-at-a-time paths over raw batches — the pre-refactor
// execution shape — so the comparison isolates the representation, not the
// operator logic.
const sfpRows = 100000

func sfpTable(b testing.TB, columnar bool) *engine.Table {
	schema := engine.Schema{{Name: "k", Type: engine.TypeInt}, {Name: "v", Type: engine.TypeFloat}}
	rows := make([]engine.Row, sfpRows)
	for i := range rows {
		var k engine.Value = int64(i)
		if !columnar {
			k = int(i)
		}
		rows[i] = engine.Row{k, float64((i * 7) % 1000)}
	}
	tb, err := engine.NewTable("sfp", schema, rows, benchParts, -1)
	if err != nil {
		b.Fatal(err)
	}
	return tb
}

func sfpOps(b testing.TB, tb *engine.Table) (*engine.Scan, *engine.Select, *engine.Project) {
	scan := engine.NewScan("sfp-scan", tb, nil, nil)
	sel := engine.NewSelect("sfp-sel", scan,
		engine.Cmp{Op: engine.LT, L: engine.Col(1), R: engine.Const{V: 900.0}})
	proj := engine.NewProject("sfp-proj", sel,
		[]engine.Expr{engine.Col(0),
			engine.Arith{Op: engine.Mul, L: engine.Col(1), R: engine.Const{V: 1.01}}},
		engine.Schema{{Name: "k", Type: engine.TypeInt}, {Name: "u", Type: engine.TypeFloat}})
	return scan, sel, proj
}

func benchScanFilterProject(b *testing.B, columnar bool) {
	tb := sfpTable(b, columnar)
	scan, sel, proj := sfpOps(b, tb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := 0
		for p := 0; p < benchParts; p++ {
			batch, err := scan.ComputeBatch(p, nil)
			if err != nil {
				b.Fatal(err)
			}
			fk, _ := engine.NewOperatorKernel(sel)
			pk, _ := engine.NewOperatorKernel(proj)
			fb, err := fk.Process(batch)
			if err != nil {
				b.Fatal(err)
			}
			if fb == nil {
				continue
			}
			pb, err := pk.Process(fb)
			if err != nil {
				b.Fatal(err)
			}
			if pb != nil {
				rows += pb.Len()
			}
		}
		if rows == 0 {
			b.Fatal("stage produced no rows")
		}
	}
}

func BenchmarkScanFilterProjectColumnar(b *testing.B) { benchScanFilterProject(b, true) }
func BenchmarkScanFilterProjectRowBaseline(b *testing.B) {
	benchScanFilterProject(b, false)
}

// scalingPoint is one GOMAXPROCS setting in the worker-scaling series.
type scalingPoint struct {
	Workers          int     `json:"workers"`
	StagedSeconds    float64 `json:"staged_seconds_per_op"`
	PipelinedSeconds float64 `json:"pipelined_seconds_per_op"`
	Speedup          float64 `json:"pipelined_speedup"`
	PipelinedAllocs  int64   `json:"pipelined_allocs_per_op"`
	PipelinedBytes   int64   `json:"pipelined_bytes_per_op"`
}

// allocPoint records an allocation measurement from testing.Benchmark.
type allocPoint struct {
	SecondsPerOp float64 `json:"seconds_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
}

type benchReport struct {
	GOMAXPROCS    int `json:"gomaxprocs"`
	Branches      int `json:"branches"`
	RowsPerBranch int `json:"rows_per_branch"`
	Partitions    int `json:"partitions"`
	// Scaling pins GOMAXPROCS to each worker count; speedup is staged vs
	// pipelined wall time on the multi-branch plan at that setting.
	Scaling []scalingPoint `json:"scaling"`
	// ScanFilterProject compares the shared kernels on columnar batches
	// against the []Row baseline (plain-int key defeats strict typing).
	ScanFilterProjectRows     int        `json:"scan_filter_project_rows"`
	ScanFilterProjectRow      allocPoint `json:"scan_filter_project_row_baseline"`
	ScanFilterProjectColumnar allocPoint `json:"scan_filter_project_columnar"`
	AllocsReduction           float64    `json:"scan_filter_project_allocs_reduction"`
	// CheckpointQ1 sizes the materialized Q1 scan intermediate in the legacy
	// row-gob serialization vs. the column-block format DiskStore now writes.
	CheckpointQ1RowGobBytes  int64   `json:"checkpoint_q1_row_gob_bytes"`
	CheckpointQ1ColumnBytes  int64   `json:"checkpoint_q1_column_block_bytes"`
	CheckpointBytesReduction float64 `json:"checkpoint_q1_bytes_reduction"`
	// PipelinedQ1 vs PipelinedQ1Progress isolates the cost of live progress
	// tracking on the end-to-end Q1 run. ObsOverheadNs is the per-op wall
	// delta in nanoseconds (clamped at zero: timing jitter can make the
	// tracked run measure faster), ObsOverheadFrac the same relative to the
	// untracked baseline — the PR-level bar is staying under 2%.
	PipelinedQ1         allocPoint `json:"pipelined_q1"`
	PipelinedQ1Progress allocPoint `json:"pipelined_q1_progress"`
	ObsOverheadNs       float64    `json:"obs_overhead_ns"`
	ObsOverheadFrac     float64    `json:"obs_overhead_frac"`
	// PipelinedQ1Profiled runs the same Q1 with the continuous profiler
	// attached (labels + live 100 Hz CPU sampler). ProfOverheadNs /
	// ProfOverheadFrac isolate its cost against the unprofiled baseline,
	// clamped at zero like the obs overhead; the bar is staying under 2%,
	// and benchdiff treats prof_overhead_frac as lower-is-better.
	PipelinedQ1Profiled allocPoint       `json:"pipelined_q1_profiled"`
	ProfOverheadNs      float64          `json:"prof_overhead_ns"`
	ProfOverheadFrac    float64          `json:"prof_overhead_frac"`
	Speedup             float64          `json:"pipelined_speedup"`
	Metrics             runtime.Snapshot `json:"pipelined_metrics"`
	// LintWallMs is the wall time of one full ftlint sweep (load + all
	// analyzers over the whole module). Interprocedural summaries make the
	// suite quadratic-ish in the worst case, so the trajectory is tracked
	// here; benchdiff only flags it past 2x because a single cold `go list
	// -export` can dominate the measurement.
	LintWallMs float64 `json:"lint_wall_ms"`
}

func toAllocPoint(r testing.BenchmarkResult) allocPoint {
	return allocPoint{
		SecondsPerOp: r.T.Seconds() / float64(r.N),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
	}
}

// q1CheckpointBytes sizes the Q1 lineitem-scan intermediate (the natural
// materialization point feeding the aggregate) in both serializations.
func q1CheckpointBytes(t *testing.T) (rowGob, colBlock int64) {
	cat, err := tpch.Generate(0.002, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := tpch.EngineQ1(cat, 2500)
	if err != nil {
		t.Fatal(err)
	}
	scan := q1.Inputs()[0].(*engine.Scan)
	for p := 0; p < 4; p++ {
		rows, err := scan.Compute(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(rows); err != nil {
			t.Fatal(err)
		}
		rowGob += int64(buf.Len())
		n, ok := engine.ColumnBlockSize(rows)
		if !ok {
			t.Fatal("Q1 scan output is not strictly typed")
		}
		colBlock += n
	}
	return rowGob, colBlock
}

// allocCeiling is one entry of alloc_budget.json: the hard upper bound a
// benchmark's per-op allocation profile must stay under.
type allocCeiling struct {
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// TestAllocBudget enforces the checked-in allocation ceilings in
// alloc_budget.json: scan→filter→project through the columnar kernels and
// TPC-H Q1 end to end on the pipelined runtime must not allocate past the
// budget. The ceilings carry ~2x headroom over the measured steady state
// (Q1 ~1000 allocs/op, scan-filter-project ~24), so a trip means the arena
// or a kernel lost its recycling path, not timing noise — allocation counts
// are deterministic in a way wall time is not. Gated behind ALLOC_BUDGET=1
// because testing.Benchmark reruns each workload until timing stabilizes,
// which is too slow for the default test sweep.
func TestAllocBudget(t *testing.T) {
	if os.Getenv("ALLOC_BUDGET") == "" {
		t.Skip("set ALLOC_BUDGET=1 to enforce the allocation ceilings")
	}
	data, err := os.ReadFile("alloc_budget.json")
	if err != nil {
		t.Fatal(err)
	}
	var budget map[string]allocCeiling
	if err := json.Unmarshal(data, &budget); err != nil {
		t.Fatal(err)
	}
	measured := map[string]allocPoint{
		"scan_filter_project_columnar": toAllocPoint(testing.Benchmark(func(b *testing.B) {
			benchScanFilterProject(b, true)
		})),
		"pipelined_q1":          toAllocPoint(testing.Benchmark(BenchmarkRuntimePipelinedQ1)),
		"pipelined_q1_progress": toAllocPoint(testing.Benchmark(BenchmarkRuntimePipelinedQ1Progress)),
	}
	for name, ceiling := range budget {
		got, ok := measured[name]
		if !ok {
			t.Errorf("alloc_budget.json names %q but no benchmark measures it", name)
			continue
		}
		t.Logf("%s: %d allocs/op (budget %d), %d B/op (budget %d)",
			name, got.AllocsPerOp, ceiling.AllocsPerOp, got.BytesPerOp, ceiling.BytesPerOp)
		if got.AllocsPerOp > ceiling.AllocsPerOp {
			t.Errorf("%s allocates %d objects/op, over the %d budget — a recycling path regressed",
				name, got.AllocsPerOp, ceiling.AllocsPerOp)
		}
		if got.BytesPerOp > ceiling.BytesPerOp {
			t.Errorf("%s allocates %d B/op, over the %d budget",
				name, got.BytesPerOp, ceiling.BytesPerOp)
		}
	}
	for name := range measured {
		if _, ok := budget[name]; !ok {
			t.Errorf("benchmark %q has no ceiling in alloc_budget.json", name)
		}
	}
}

// lintWallMs times one full ftlint sweep — export-data load plus every
// registered analyzer over the whole module, the exact work the CI gate does.
// One run, not testing.Benchmark: the dominant cost is `go list -export`,
// whose build cache makes repeat iterations measure a different (warmer)
// workload than CI sees.
func lintWallMs(t *testing.T) float64 {
	t.Helper()
	start := time.Now()
	pkgs, err := lintanalysis.Load(".", "./...")
	if err != nil {
		t.Fatalf("lint load: %v", err)
	}
	findings, err := lintanalysis.Run(pkgs, lint.Analyzers)
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	if len(findings) > 0 {
		t.Errorf("lint sweep found %d findings on the bench tree; run ./cmd/ftlint for details", len(findings))
	}
	return ms
}

// TestWriteRuntimeBenchJSON measures staged vs pipelined on the multi-branch
// plan across a pinned 1/2/4-worker scaling series, the columnar vs []Row
// kernel comparison, and the Q1 checkpoint sizes, then writes
// BENCH_runtime.json so the perf trajectory is tracked across PRs. Timing
// noise is recorded, not asserted on.
func TestWriteRuntimeBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping bench JSON emission in -short mode")
	}
	root, err := multiBranchPlan(benchBranchRows, benchBranches, benchParts)
	if err != nil {
		t.Fatal(err)
	}
	// Warm both paths once.
	runStagedOnce(t, root)
	runPipelinedOnce(t, root, nil)

	hostProcs := goruntime.GOMAXPROCS(0)
	defer goruntime.GOMAXPROCS(hostProcs)
	var scaling []scalingPoint
	for _, w := range []int{1, 2, 4} {
		goruntime.GOMAXPROCS(w)
		staged := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runStagedOnce(b, root)
			}
		})
		pipelined := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runPipelinedOnce(b, root, nil)
			}
		})
		sp := toAllocPoint(staged)
		pp := toAllocPoint(pipelined)
		scaling = append(scaling, scalingPoint{
			Workers:          w,
			StagedSeconds:    sp.SecondsPerOp,
			PipelinedSeconds: pp.SecondsPerOp,
			Speedup:          sp.SecondsPerOp / pp.SecondsPerOp,
			PipelinedAllocs:  pp.AllocsPerOp,
			PipelinedBytes:   pp.BytesPerOp,
		})
	}
	goruntime.GOMAXPROCS(hostProcs)

	rowPoint := toAllocPoint(testing.Benchmark(func(b *testing.B) { benchScanFilterProject(b, false) }))
	colPoint := toAllocPoint(testing.Benchmark(func(b *testing.B) { benchScanFilterProject(b, true) }))

	m := &runtime.Metrics{}
	start := time.Now()
	runPipelinedOnce(t, root, m)
	_ = time.Since(start)

	rowGob, colBlock := q1CheckpointBytes(t)

	lintMs := lintWallMs(t)

	// The overhead series are differences of two benchmark runs, and on a
	// loaded single-core host one run's wall time swings by more than the
	// 2% effect being measured. Min-of-3 approximates the noise-free run on
	// both sides of each difference.
	minPoint := func(bench func(*testing.B)) allocPoint {
		best := toAllocPoint(testing.Benchmark(bench))
		for i := 0; i < 2; i++ {
			if p := toAllocPoint(testing.Benchmark(bench)); p.SecondsPerOp < best.SecondsPerOp {
				best = p
			}
		}
		return best
	}
	q1Point := minPoint(BenchmarkRuntimePipelinedQ1)
	q1ProgPoint := minPoint(BenchmarkRuntimePipelinedQ1Progress)
	overheadNs := (q1ProgPoint.SecondsPerOp - q1Point.SecondsPerOp) * 1e9
	if overheadNs < 0 {
		overheadNs = 0
	}
	overheadFrac := 0.0
	if q1Point.SecondsPerOp > 0 {
		overheadFrac = overheadNs / 1e9 / q1Point.SecondsPerOp
	}

	q1ProfPoint := minPoint(BenchmarkRuntimePipelinedQ1Profiled)
	profOverheadNs := (q1ProfPoint.SecondsPerOp - q1Point.SecondsPerOp) * 1e9
	if profOverheadNs < 0 {
		profOverheadNs = 0
	}
	profOverheadFrac := 0.0
	if q1Point.SecondsPerOp > 0 {
		profOverheadFrac = profOverheadNs / 1e9 / q1Point.SecondsPerOp
	}

	last := scaling[len(scaling)-1]
	report := benchReport{
		GOMAXPROCS:                hostProcs,
		Branches:                  benchBranches,
		RowsPerBranch:             benchBranchRows,
		Partitions:                benchParts,
		Scaling:                   scaling,
		ScanFilterProjectRows:     sfpRows,
		ScanFilterProjectRow:      rowPoint,
		ScanFilterProjectColumnar: colPoint,
		AllocsReduction:           1 - float64(colPoint.AllocsPerOp)/float64(rowPoint.AllocsPerOp),
		CheckpointQ1RowGobBytes:   rowGob,
		CheckpointQ1ColumnBytes:   colBlock,
		CheckpointBytesReduction:  1 - float64(colBlock)/float64(rowGob),
		PipelinedQ1:               q1Point,
		PipelinedQ1Progress:       q1ProgPoint,
		ObsOverheadNs:             overheadNs,
		ObsOverheadFrac:           overheadFrac,
		PipelinedQ1Profiled:       q1ProfPoint,
		ProfOverheadNs:            profOverheadNs,
		ProfOverheadFrac:          profOverheadFrac,
		Speedup:                   last.Speedup,
		Metrics:                   m.Snapshot(),
		LintWallMs:                lintMs,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_runtime.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, s := range scaling {
		t.Logf("workers=%d staged=%.3fs pipelined=%.3fs speedup=%.2fx",
			s.Workers, s.StagedSeconds, s.PipelinedSeconds, s.Speedup)
	}
	t.Logf("scan-filter-project allocs/op: row=%d columnar=%d (%.0f%% reduction)",
		rowPoint.AllocsPerOp, colPoint.AllocsPerOp, 100*report.AllocsReduction)
	t.Logf("Q1 checkpoint bytes: row-gob=%d column-block=%d (%.0f%% reduction)",
		rowGob, colBlock, 100*report.CheckpointBytesReduction)
	t.Logf("Q1 progress-tracking overhead: %.0fns/op (%.2f%% of %.3fs baseline)",
		overheadNs, 100*overheadFrac, q1Point.SecondsPerOp)
	t.Logf("Q1 continuous-profiling overhead: %.0fns/op (%.2f%% of %.3fs baseline; bar 2%%)",
		profOverheadNs, 100*profOverheadFrac, q1Point.SecondsPerOp)
	t.Logf("ftlint full-module sweep: %.0fms", lintMs)
	if report.AllocsReduction < 0.5 {
		t.Errorf("columnar allocs reduction %.2f below the 0.5 acceptance bar", report.AllocsReduction)
	}
	if colBlock >= rowGob {
		t.Errorf("column-block checkpoint (%d bytes) not smaller than row gob (%d bytes)", colBlock, rowGob)
	}
}

package main

import (
	"strings"
	"testing"
)

func TestFlattenNestedDocument(t *testing.T) {
	out := map[string]float64{}
	flatten("", map[string]any{
		"scaling": []any{
			map[string]any{"workers": float64(1), "pipelined_seconds_per_op": 0.5},
		},
		"checkpoint_q1_row_gob_bytes": float64(1000),
		"label":                       "ignored",
	}, out)
	if out["scaling.0.pipelined_seconds_per_op"] != 0.5 {
		t.Errorf("flatten missed array leaf: %v", out)
	}
	if out["checkpoint_q1_row_gob_bytes"] != 1000 {
		t.Errorf("flatten missed top-level leaf: %v", out)
	}
	if _, ok := out["label"]; ok {
		t.Error("non-numeric leaf survived flattening")
	}
}

func TestDirectionClassification(t *testing.T) {
	cases := map[string]int{
		"scaling.0.pipelined_seconds_per_op":        -1,
		"scaling.2.pipelined_allocs_per_op":         -1,
		"scaling.1.pipelined_bytes_per_op":          -1,
		"scan_filter_project_columnar.bytes_per_op": -1,
		"checkpoint_q1_column_block_bytes":          -1,
		"obs_overhead_ns":                           -1,
		"lint_wall_ms":                              -1,
		"pipelined_q1_progress.allocs_per_op":       -1,
		"pipelined_speedup":                         1,
		"checkpoint_q1_bytes_reduction":             1,
		"obs_overhead_frac":                         0,
		"scaling.0.workers":                         0,
		"gomaxprocs":                                0,
		// BENCH_service.json sweep series.
		"sweep.0.clean.qps":       1,
		"sweep.1.failures.qps":    1,
		"sweep.0.clean.p50_ms":    -1,
		"sweep.2.failures.p99_ms": -1,
		"sweep.0.clean.completed": 0,
		"sweep.0.clients":         0,
		"config.duration_seconds": 0,
	}
	for k, want := range cases {
		if got := direction(k); got != want {
			t.Errorf("direction(%q) = %d, want %d", k, got, want)
		}
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	oldM := map[string]float64{
		"a.seconds_per_op": 1.0,
		"b.allocs_per_op":  100,
		"ckpt_bytes":       1000,
		"speedup":          2.0,
		"workers":          4,
	}
	newM := map[string]float64{
		"a.seconds_per_op": 1.25, // +25%: regression
		"b.allocs_per_op":  105,  // +5%: fine
		"ckpt_bytes":       900,  // improved
		"speedup":          1.5,  // -25%: regression
		"workers":          8,    // informational
	}
	report, n := Diff(oldM, newM, 0.10, false)
	if n != 2 {
		t.Fatalf("regressions = %d, want 2\n%s", n, report)
	}
	if !strings.Contains(report, "a.seconds_per_op") || !strings.Contains(report, "speedup") {
		t.Errorf("report missing regressed series:\n%s", report)
	}
	if strings.Contains(report, "b.allocs_per_op") {
		t.Errorf("report includes non-regressed series without -all:\n%s", report)
	}

	reportAll, n2 := Diff(oldM, newM, 0.10, true)
	if n2 != n {
		t.Errorf("-all changed regression count: %d vs %d", n2, n)
	}
	if !strings.Contains(reportAll, "b.allocs_per_op") {
		t.Errorf("-all report missing improved series:\n%s", reportAll)
	}
}

func TestLintWallMsRegressesOnlyPastDouble(t *testing.T) {
	oldM := map[string]float64{"lint_wall_ms": 100}

	// +80% is well past the default 10% threshold but under the 2x bar the
	// noisy go-list-backed measurement gets: not a regression.
	report, n := Diff(oldM, map[string]float64{"lint_wall_ms": 180}, 0.10, false)
	if n != 0 {
		t.Errorf("+80%% lint_wall_ms flagged as regression:\n%s", report)
	}

	// A >2x blowup is the super-linear-analyzer signature and must trip.
	report, n = Diff(oldM, map[string]float64{"lint_wall_ms": 250}, 0.10, false)
	if n != 1 {
		t.Errorf("2.5x lint_wall_ms not flagged (n=%d):\n%s", n, report)
	}
	if !strings.Contains(report, "lint_wall_ms") {
		t.Errorf("report missing lint_wall_ms series:\n%s", report)
	}

	// An explicit -threshold wider than 2x still wins.
	if _, n := Diff(oldM, map[string]float64{"lint_wall_ms": 250}, 3.0, false); n != 0 {
		t.Errorf("explicit -threshold 3.0 overridden for lint_wall_ms")
	}
}

func TestDiffNoRegressionsOnIdenticalFiles(t *testing.T) {
	m := map[string]float64{"x.seconds_per_op": 0.5, "speedup": 1.6}
	if report, n := Diff(m, m, 0.10, false); n != 0 {
		t.Errorf("identical inputs flagged %d regressions:\n%s", n, report)
	}
}

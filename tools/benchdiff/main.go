// Command benchdiff compares two benchmark result files (the
// BENCH_runtime.json emitted by internal/runtime's benchmark harness, or the
// BENCH_service.json emitted by ftload's service sweep) and flags
// regressions: any lower-is-better series — seconds/op, allocs/op, bytes/op,
// checkpoint bytes, service latency percentiles (p50_ms/p99_ms), the ftlint
// sweep wall time (lint_wall_ms, flagged only past 2x) — that got worse by
// more than the threshold, and any higher-is-better series (speedups,
// reductions, service qps) that shrank by more than the threshold.
//
// Usage:
//
//	benchdiff [-threshold 0.10] [-all] old.json new.json
//
// Exit status 1 means at least one regression crossed the threshold, making
// the command usable as an (advisory) CI gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0.10, "relative change that counts as a regression")
		all       = flag.Bool("all", false, "print every compared series, not only regressions")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] [-all] old.json new.json")
		os.Exit(2)
	}
	oldM, err := loadFlat(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newM, err := loadFlat(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	report, regressions := Diff(oldM, newM, *threshold, *all)
	fmt.Print(report)
	if regressions > 0 {
		fmt.Printf("%d regression(s) beyond %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("no regressions")
}

func loadFlat(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	flatten("", doc, out)
	return out, nil
}

// flatten walks a decoded JSON document and records every numeric leaf under
// its dotted path (array elements are indexed).
func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			flatten(join(prefix, k), sub, out)
		}
	case []any:
		for i, sub := range x {
			flatten(join(prefix, strconv.Itoa(i)), sub, out)
		}
	case float64:
		out[prefix] = x
	}
}

func join(prefix, key string) string {
	if prefix == "" {
		return key
	}
	return prefix + "." + key
}

// direction classifies a series by its key: -1 lower is better, +1 higher is
// better, 0 informational (counts, configuration, identifiers).
func direction(key string) int {
	leaf := leafOf(key)
	switch {
	case strings.HasSuffix(leaf, "seconds_per_op"),
		strings.HasSuffix(leaf, "allocs_per_op"),
		strings.HasSuffix(leaf, "bytes_per_op"),
		strings.HasSuffix(leaf, "_bytes"),
		// Progress-tracking overhead on pipelined Q1 (BENCH_runtime.json).
		leaf == "obs_overhead_ns",
		// Full-module ftlint sweep wall time (BENCH_runtime.json).
		leaf == "lint_wall_ms",
		// Continuous-profiling overhead on pipelined Q1 (BENCH_runtime.json).
		leaf == "prof_overhead_ns", leaf == "prof_overhead_frac",
		// BENCH_service.json latency percentiles (p50_ms, p99_ms).
		leaf == "p50_ms", leaf == "p99_ms":
		return -1
	case strings.Contains(leaf, "speedup"), strings.HasSuffix(leaf, "_reduction"),
		// BENCH_service.json throughput.
		leaf == "qps":
		return 1
	default:
		return 0
	}
}

func leafOf(key string) string {
	if i := strings.LastIndex(key, "."); i >= 0 {
		return key[i+1:]
	}
	return key
}

// thresholdFor widens the regression bar for series whose measurement is
// dominated by ambient machine state rather than the code under test.
// lint_wall_ms times a `go list -export` whose build-cache temperature
// swings it by tens of percent run to run, so only a >2x blowup — the
// signature of an analyzer going super-linear — counts as a regression.
// prof_overhead_frac is the difference of two benchmark medians, so near the
// 2% budget its run-to-run noise is the same order as its value; only a >2x
// blowup is a credible regression.
func thresholdFor(key string, base float64) float64 {
	switch leafOf(key) {
	case "lint_wall_ms", "prof_overhead_ns", "prof_overhead_frac":
		if base < 1.0 {
			return 1.0
		}
	}
	return base
}

// Diff renders the comparison and counts regressions beyond threshold.
func Diff(oldM, newM map[string]float64, threshold float64, all bool) (string, int) {
	keys := make([]string, 0, len(oldM))
	for k := range oldM {
		if _, ok := newM[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var b strings.Builder
	regressions := 0
	for _, k := range keys {
		dir := direction(k)
		if dir == 0 {
			continue
		}
		ov, nv := oldM[k], newM[k]
		if ov == 0 {
			continue
		}
		change := (nv - ov) / ov
		th := thresholdFor(k, threshold)
		regressed := (dir < 0 && change > th) || (dir > 0 && change < -th)
		if regressed {
			regressions++
		}
		if !regressed && !all {
			continue
		}
		mark := "  "
		if regressed {
			mark = "!!"
		}
		fmt.Fprintf(&b, "%s %-55s %14.6g -> %-14.6g %+7.1f%%\n", mark, k, ov, nv, change*100)
	}
	for k := range oldM {
		if _, ok := newM[k]; !ok && direction(k) != 0 {
			fmt.Fprintf(&b, "-- %-55s dropped from new file\n", k)
		}
	}
	return b.String(), regressions
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

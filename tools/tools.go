//go:build tools

// Package tools pins the versions of external developer tools CI installs.
//
// The module itself is dependency-free, so the classic blank-import
// tools.go pattern would drag x/tools and staticcheck into go.mod/go.sum
// and break offline builds. Instead, the pins live here as constants and
// .github/workflows/ci.yml installs each tool with `go install <pkg>@<ver>`
// using these exact versions. Bump a version here and in ci.yml together.
package tools

const (
	// StaticcheckVersion pins honnef.co/go/tools/cmd/staticcheck.
	StaticcheckVersion = "2023.1.7"
	// XToolsVersion pins golang.org/x/tools, the source of the nilness and
	// shadow vet analyzers.
	XToolsVersion = "v0.21.0"
)

// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per exhibit), plus ablation benchmarks for the design
// choices called out in DESIGN.md: the t/2 wasted-runtime approximation,
// the pruning rules, the success percentile, and top-k join enumeration.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package bench

import (
	"testing"

	"ftpde/internal/core"
	"ftpde/internal/cost"
	"ftpde/internal/engine"
	"ftpde/internal/exec"
	"ftpde/internal/experiments"
	"ftpde/internal/failure"
	"ftpde/internal/plan"
	"ftpde/internal/schemes"
	"ftpde/internal/tpch"
)

func benchConfig() experiments.Config {
	return experiments.Config{Nodes: 10, Traces: 10, Seed: 1, SF: 100}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := r.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// One benchmark per paper exhibit.

func BenchmarkFigure1(b *testing.B)     { runExperiment(b, "fig1") }
func BenchmarkTable2(b *testing.B)      { runExperiment(b, "table2") }
func BenchmarkFigure8Low(b *testing.B)  { runExperiment(b, "fig8a") }
func BenchmarkFigure8High(b *testing.B) { runExperiment(b, "fig8b") }
func BenchmarkFigure10(b *testing.B)    { runExperiment(b, "fig10") }
func BenchmarkFigure11(b *testing.B)    { runExperiment(b, "fig11") }
func BenchmarkFigure12a(b *testing.B)   { runExperiment(b, "fig12a") }
func BenchmarkFigure12b(b *testing.B)   { runExperiment(b, "fig12b") }
func BenchmarkTable3(b *testing.B)      { runExperiment(b, "table3") }
func BenchmarkFigure13(b *testing.B)    { runExperiment(b, "fig13") }

// Ablation: exact Equation 3 vs the paper's t/2 approximation for w(c).

func benchWasted(b *testing.B, exact bool) {
	m := cost.Model{MTBF: 3600, MTTR: 1, Percentile: 0.95, PipeConst: 1, ExactWasted: exact}
	q, err := tpch.Q5(tpch.Params{SF: 100})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.EstimateRuntime(q.Plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWastedApprox(b *testing.B) { benchWasted(b, false) }
func BenchmarkAblationWastedExact(b *testing.B)  { benchWasted(b, true) }

// Ablation: optimizer enumeration with and without the pruning rules, over
// the top-20 Q5 join orders.

func q5TopK(b *testing.B, k int) []*plan.Plan {
	b.Helper()
	prm := tpch.Params{SF: 100, Nodes: 10}
	g, err := tpch.Q5JoinGraph(prm)
	if err != nil {
		b.Fatal(err)
	}
	coster, err := tpch.Q5Coster(prm)
	if err != nil {
		b.Fatal(err)
	}
	trees, err := g.TopK(k)
	if err != nil {
		b.Fatal(err)
	}
	plans := make([]*plan.Plan, len(trees))
	for i, tr := range trees {
		plans[i] = tpch.Q5PlanFromTree(tr, g, coster)
	}
	return plans
}

func benchPruning(b *testing.B, opt core.Options) {
	plans := q5TopK(b, 20)
	opt.Model = cost.Model{MTBF: 3600, MTTR: 1, Percentile: 0.95, PipeConst: 1, Nodes: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FindBestFTPlan(plans, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPruningOn(b *testing.B) { benchPruning(b, core.Options{MemoizePaths: true}) }
func BenchmarkAblationPruningOff(b *testing.B) {
	benchPruning(b, core.Options{DisableRule1: true, DisableRule2: true, DisableRule3: true})
}

// Ablation: success percentile sensitivity of the optimizer.

func BenchmarkAblationPercentile(b *testing.B) {
	q, err := tpch.Q5(tpch.Params{SF: 100})
	if err != nil {
		b.Fatal(err)
	}
	percentiles := []float64{0.5, 0.9, 0.95, 0.99}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := percentiles[i%len(percentiles)]
		m := cost.Model{MTBF: 3600, MTTR: 1, Percentile: s, PipeConst: 1}
		if _, err := core.Optimize(q.Plan, core.Options{Model: m}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: top-k join enumeration depth.

func BenchmarkAblationTopK1(b *testing.B)  { benchTopK(b, 1) }
func BenchmarkAblationTopK5(b *testing.B)  { benchTopK(b, 5) }
func BenchmarkAblationTopK20(b *testing.B) { benchTopK(b, 20) }

func benchTopK(b *testing.B, k int) {
	plans := q5TopK(b, k)
	m := cost.Model{MTBF: 3600, MTTR: 1, Percentile: 0.95, PipeConst: 1, Nodes: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FindBestFTPlan(plans, core.Options{Model: m, MemoizePaths: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// Substrate micro-benchmarks.

func BenchmarkCollapsePaperExample(b *testing.B) {
	m := cost.Model{MTBF: 60, MTTR: 0, Percentile: 0.95, PipeConst: 1}
	p := plan.PaperExample()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cost.Collapse(p, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinEnumerateQ5(b *testing.B) {
	g, err := tpch.Q5JoinGraph(tpch.Params{SF: 100})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trees, err := g.EnumerateAll()
		if err != nil {
			b.Fatal(err)
		}
		if len(trees) != 1344 {
			b.Fatalf("got %d trees", len(trees))
		}
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	spec := failure.Spec{Nodes: 10, MTBF: 3600, MTTR: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		failure.NewTrace(spec, 500*905.33, int64(i))
	}
}

func BenchmarkSimulateQ5(b *testing.B) {
	q, err := tpch.Q5(tpch.Params{SF: 100})
	if err != nil {
		b.Fatal(err)
	}
	spec := failure.Spec{Nodes: 10, MTBF: 3600, MTTR: 1}
	m := cost.DefaultModel(spec)
	p := q.Plan.Clone()
	if err := p.Apply(plan.AllMat(p)); err != nil {
		b.Fatal(err)
	}
	tr := failure.NewTrace(spec, 500*q.Baseline, 7)
	opt := exec.Options{Cluster: spec, Model: m, Recovery: schemes.FineGrained}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(p, opt, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// Real-engine benchmark: TPC-H Q3 end to end at a small scale factor, with
// and without an injected failure.

func benchEngineQ3(b *testing.B, withFailure bool) {
	cat, err := tpch.Generate(0.002, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := tpch.EngineQ3(cat, "BUILDING", 1200, true)
		if err != nil {
			b.Fatal(err)
		}
		var inj engine.FailureInjector = engine.NoFailures{}
		if withFailure {
			inj = engine.NewScriptedFailures().Add("q3-join-orders-lineitem", 1, 0)
		}
		co := &engine.Coordinator{Nodes: 4, Injector: inj}
		res, _, err := co.Execute(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.AllRows()) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkEngineQ3(b *testing.B)         { benchEngineQ3(b, false) }
func BenchmarkEngineQ3Recovery(b *testing.B) { benchEngineQ3(b, true) }
